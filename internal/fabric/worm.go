package fabric

import (
	"sanft/internal/sim"
	"sanft/internal/topology"
	"sanft/internal/trace"
)

// worm is the in-flight state of one packet traversing the network
// wormhole-style. It advances hop by hop, acquiring the directed channel of
// each link before streaming onto it, and holds a channel until the next
// one is acquired (and one serialization time has passed), so blocking
// propagates backward exactly as in real wormhole switching.
type worm struct {
	f   *Fabric
	pkt *Packet
	// seq is the worm's injection-order serial number. The worm set is a
	// map, so every operation that visits several worms (flushes on a
	// kill, in-flight diagnostics) orders them by seq to keep runs with
	// the same seed byte-identical.
	seq uint64

	curNode  topology.NodeID // node whose output we last left / are leaving
	routeIdx int             // next route byte to consume

	held   []chanKey  // channels currently or recently held, in path order
	grants []sim.Time // grant time per held channel

	waiting  *channelState // non-nil while parked in a waiter queue
	waitKey  chanKey
	waitNext topology.NodeID // node at far end of the awaited channel
	parkedAt sim.Time        // when the worm parked (for blocking-time accounting)

	watchdog      sim.Timer
	dead          bool
	injectionDone bool // OnInjectDone already fired
}

// usesLink reports whether the worm holds or awaits a channel of link id.
func (w *worm) usesLink(id int) bool {
	for _, k := range w.held {
		if k.link == id {
			// Only counts if we still actually hold it.
			if cs := w.f.chans[k]; cs != nil && cs.holder == w {
				return true
			}
		}
	}
	return w.waiting != nil && w.waitKey.link == id
}

// request asks for the directed channel key leading to node next. If the
// channel is free it is granted immediately; otherwise the worm parks in
// the FIFO queue and arms the blocked-path watchdog.
func (w *worm) request(key chanKey, next topology.NodeID) {
	if w.dead {
		return
	}
	cs := w.f.chanState(key)
	if cs.holder == nil && len(cs.waiters) == 0 {
		w.granted(key, next)
		return
	}
	cs.waiters = append(cs.waiters, w)
	w.waiting, w.waitKey, w.waitNext = cs, key, next
	w.parkedAt = w.f.k.Now()
	w.f.emitPkt(trace.EvLinkBlock, w.pkt, key.link, key.dir, "")
	if !w.watchdog.Pending() {
		w.watchdog = w.f.k.After(w.f.cfg.Watchdog, func() {
			w.f.stats.WatchdogResets++
			w.f.mx.Add("fabric.watchdog_resets", 1)
			w.f.emitPkt(trace.EvWatchdog, w.pkt, w.waitKey.link, w.waitKey.dir, "")
			w.die(DropWatchdog)
		})
	}
}

// noteUnparked records how long the worm was blocked waiting for a channel
// — the wormhole head-of-line blocking time. Called on grant and on death
// while parked.
func (w *worm) noteUnparked() {
	if w.waiting == nil {
		return
	}
	w.f.mx.Observe("fabric.worm.block_ns", w.f.k.Now().Sub(w.parkedAt))
}

// granted is called (from request or from a release handing the channel
// over) when the worm becomes the holder of key.
func (w *worm) granted(key chanKey, next topology.NodeID) {
	if w.dead {
		// Should not happen: dying removes the worm from waiter queues.
		panic("fabric: channel granted to dead worm")
	}
	f := w.f
	now := f.k.Now()
	cs := f.chanState(key)
	cs.holder = w
	cs.grabbed = now
	f.emitPkt(trace.EvLinkAcquire, w.pkt, key.link, key.dir, "")
	w.noteUnparked()
	w.waiting = nil
	w.watchdog.Cancel()
	w.held = append(w.held, key)
	w.grants = append(w.grants, now)

	// The previous channel is released when the tail clears it: one
	// serialization after its grant, but never before the next channel
	// was acquired (a blocked head stalls the tail).
	if n := len(w.held); n >= 2 {
		prev := w.held[n-2]
		relAt := w.grants[n-2].Add(f.SerializationTime(w.pkt.Size))
		if relAt.Before(now) {
			relAt = now
		}
		f.k.At(relAt, func() { f.release(prev, w) })
	}

	nextNode := f.nw.Node(next)
	if nextNode.Kind == topology.Host {
		// Final hop. A route with leftover bytes is malformed: the host
		// NIC discards it.
		if w.routeIdx != len(w.pkt.Route) {
			w.die(DropBadRoute)
			return
		}
		deliverAt := now.Add(f.cfg.PropDelay + f.SerializationTime(w.pkt.Size))
		f.k.At(deliverAt, func() { w.deliverTo(next) })
		return
	}
	// Head reaches the switch after propagation, takes a routing decision,
	// then requests the next channel.
	f.k.After(f.cfg.PropDelay+f.cfg.RouteDelay, func() { w.advance(next) })
}

// advance consumes the next route byte at switch sw and requests the
// corresponding output channel.
func (w *worm) advance(sw topology.NodeID) {
	if w.dead {
		return
	}
	f := w.f
	w.curNode = sw
	node := f.nw.Node(sw)
	if !node.Up {
		w.die(DropDeadSwitch)
		return
	}
	if w.routeIdx >= len(w.pkt.Route) {
		w.die(DropBadRoute)
		return
	}
	port := w.pkt.Route[w.routeIdx]
	w.routeIdx++
	if port < 0 || port >= node.Radix() || node.Ports[port] == nil {
		w.die(DropBadRoute)
		return
	}
	l := node.Ports[port]
	if !f.nw.LinkUsable(l) {
		w.die(DropDeadLink)
		return
	}
	if f.graySample(l.ID) {
		w.die(DropGray)
		return
	}
	e := l.Other(sw)
	w.request(keyFor(l, sw), e.Node)
}

// deliverTo completes the worm at host h: frees remaining channels, applies
// the transit hook, and hands the packet to the host's receive callback.
func (w *worm) deliverTo(h topology.NodeID) {
	if w.dead {
		return
	}
	f := w.f
	w.finish()
	if f.transitHook != nil && !f.transitHook(w.pkt) {
		f.drop(w.pkt, DropInjected)
		return
	}
	w.pkt.Delivered = f.k.Now()
	f.stats.Delivered++
	f.stats.BytesDelivered += uint64(w.pkt.Size)
	f.mx.Add("fabric.pkts_delivered", 1)
	f.mx.Add("fabric.bytes_delivered", uint64(w.pkt.Size))
	f.emitPkt(trace.EvDeliver, w.pkt, -1, 0, "")
	if fn := f.deliver[h]; fn != nil {
		fn(w.pkt)
	}
}

// die aborts the worm (watchdog reset, dead route element, or flush): all
// held channels are freed immediately and the packet is dropped silently.
func (w *worm) die(reason DropReason) {
	if w.dead {
		return
	}
	f := w.f
	w.finish()
	f.drop(w.pkt, reason)
}

// finish tears down worm state common to delivery and death: watchdog,
// waiter-queue membership, held channels, inject-done notification.
func (w *worm) finish() {
	f := w.f
	w.dead = true
	delete(f.worms, w)
	w.watchdog.Cancel()
	if w.waiting != nil {
		w.noteUnparked()
		ws := w.waiting.waiters
		for i, cand := range ws {
			if cand == w {
				w.waiting.waiters = append(ws[:i], ws[i+1:]...)
				break
			}
		}
		w.waiting = nil
	}
	for _, key := range w.held {
		f.release(key, w)
	}
	w.fireInjectDone()
}

// fireInjectDone notifies the source NIC that its send path is free. Safe
// to call multiple times; only the first fires.
func (w *worm) fireInjectDone() {
	if w.injectionDone {
		return
	}
	w.injectionDone = true
	if w.pkt.OnInjectDone != nil {
		w.pkt.OnInjectDone()
	}
}

// release frees channel key if worm w still holds it, accounts busy time,
// and grants the channel to the next FIFO waiter.
func (f *Fabric) release(key chanKey, w *worm) {
	cs := f.chans[key]
	if cs == nil || cs.holder != w {
		return // already released (e.g. death raced a scheduled release)
	}
	cs.busy += f.k.Now().Sub(cs.grabbed)
	cs.holder = nil
	f.emitPkt(trace.EvLinkRelease, w.pkt, key.link, key.dir, "")
	// First-channel release means the tail has left the source NIC.
	if len(w.held) > 0 && w.held[0] == key {
		w.fireInjectDone()
	}
	if len(cs.waiters) > 0 {
		next := cs.waiters[0]
		cs.waiters = cs.waiters[1:]
		// Re-resolve the far node for the waiter (stored at request time).
		next.granted(key, next.waitNextFor(key))
	}
}

// waitNextFor returns the node the worm was heading to when it queued for
// key. (The worm queues for exactly one channel at a time.)
func (w *worm) waitNextFor(key chanKey) topology.NodeID {
	return w.waitNext
}
