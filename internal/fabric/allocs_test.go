package fabric

import (
	"testing"

	"sanft/internal/routing"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

// TestPacketClonePooledAllocs pins the fabric side of the shard-boundary
// clone: after pool warmup, ClonePooled+Release of a packet shell must
// not allocate (the payload is cloned separately by the protocol layer).
func TestPacketClonePooledAllocs(t *testing.T) {
	pkt := &Packet{
		Route: routing.Route{1, 2}, Src: 1, Dst: 2, Size: 1048,
		Gen: 1, Seq: 5, Msg: 3,
	}
	pkt.ClonePooled().Release()
	avg := testing.AllocsPerRun(10000, func() {
		pkt.ClonePooled().Release()
	})
	if avg != 0 {
		t.Fatalf("packet boundary clone allocates %.2f allocs/op in steady state, want 0", avg)
	}
}

// TestPacketReleaseOwnershipGuard: value copies and ordinary packets
// must never free pooled storage.
func TestPacketReleaseOwnershipGuard(t *testing.T) {
	orig := &Packet{Route: routing.Route{1}, Size: 64}
	c := orig.ClonePooled()
	cp := *c
	cp.Release() // value copy: no-op
	if len(c.Route) != 1 || c.Route[0] != 1 {
		t.Fatal("releasing a value copy freed the owner's route storage")
	}
	c.Release()
	orig.Release() // blk nil: no-op
	if len(orig.Route) != 1 {
		t.Fatal("releasing an ordinary packet corrupted it")
	}
}

// TestPipeInjectAllocs pins the pipe-mode inject hot path. Inject
// schedules two closures (send-DMA completion and local arrival), each
// capturing state, and the kernel itself adds nothing — so the budget is
// the closures alone. The gate uses a pre-routed packet with no
// callbacks; 4 allocs/op covers the two closure headers plus their
// captured-variable boxes and leaves zero headroom for regression (the
// pre-overhaul stack measured ~3x this from heap boxing alone).
func TestPipeInjectAllocs(t *testing.T) {
	nw, hosts := topology.Star(2)
	k := sim.New(1)
	p := NewPipe(k, nw, DefaultConfig())
	for _, h := range hosts {
		p.AttachHost(h, func(*Packet) {})
	}
	route, err := routing.Shortest(nw, hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	pkt := &Packet{Route: route, Dst: hosts[1], Size: 256}
	// Warm the kernel arena and pipe state.
	for i := 0; i < 16; i++ {
		p.Inject(hosts[0], pkt)
		k.Run()
	}
	const budget = 4.0
	avg := testing.AllocsPerRun(2000, func() {
		p.Inject(hosts[0], pkt)
		k.Run()
	})
	if avg > budget {
		t.Fatalf("pipe inject+deliver allocates %.2f allocs/op, budget %.0f", avg, budget)
	}
}
