package fabric

import (
	"fmt"
	"time"

	"sanft/internal/metrics"
	"sanft/internal/sim"
	"sanft/internal/topology"
	"sanft/internal/trace"
)

// Pipe is the shard-local fabric of the conservative parallel engine
// (internal/parsim): a latency-faithful, contention-decoupled wire model.
//
// The wormhole fabric cannot be partitioned conservatively: backpressure
// couples a worm's tail to its head with zero lookahead (a blocked channel
// on one host's path releases at the same instant another host's grant
// lands). Pipe removes channel contention and evaluates the whole path at
// injection time against the shard's own topology replica, charging the
// uncontended cut-through latency:
//
//	H·(PropDelay + RouteDelay) + PropDelay + SerializationTime(size)
//
// for a route crossing H switches — exactly the wormhole fabric's
// uncontended pipeline. Every quantity depends only on the shard's local
// state at the injection instant, so a packet's arrival time is known the
// moment it leaves, and the minimum such latency over all host pairs is a
// sound lookahead for the epoch barrier. Route and liveness checks (dead
// links, dead switches, bad route bytes) also happen at injection time:
// drop timing shifts earlier than the wormhole's head-hits-the-fault
// timing, which is a documented modeling difference of sharded mode — but
// an identical one for every worker count, which is what byte-identical
// parallel execution requires.
//
// A destination host attached locally (AttachHost) receives directly; any
// other destination is handed to the Egress hook with its precomputed
// arrival time — the shard boundary the engine carries packets across.
type Pipe struct {
	k   *sim.Kernel
	nw  *topology.Network
	cfg Config

	deliver map[topology.NodeID]func(*Packet)
	egress  func(dst topology.NodeID, at sim.Time, pkt *Packet)

	transitHook func(*Packet) bool
	tracer      trace.Tracer
	gray        map[int]*grayLink // per-link probabilistic loss (SetLinkLoss)

	stats Stats
	reg   *metrics.Registry
	mx    *metrics.Scope
}

// NewPipe returns a pipe-mode fabric over the (shard-local) network nw
// driven by kernel k.
func NewPipe(k *sim.Kernel, nw *topology.Network, cfg Config) *Pipe {
	if cfg.LinkRate <= 0 {
		panic("fabric: LinkRate must be positive")
	}
	p := &Pipe{
		k:       k,
		nw:      nw,
		cfg:     cfg,
		deliver: make(map[topology.NodeID]func(*Packet)),
	}
	p.BindMetrics(metrics.NewRegistry())
	return p
}

// BindMetrics points the pipe's instrumentation at reg. Pipe mode has no
// channel arbiters, so unlike the wormhole fabric it publishes no per-link
// busy/utilization gauges — only the packet counters.
func (p *Pipe) BindMetrics(reg *metrics.Registry) {
	p.reg = reg
	p.mx = reg.Scope(nil)
}

// Metrics returns the registry the pipe currently records into.
func (p *Pipe) Metrics() *metrics.Registry { return p.reg }

// Kernel returns the driving kernel.
func (p *Pipe) Kernel() *sim.Kernel { return p.k }

// Network returns the shard-local topology replica.
func (p *Pipe) Network() *topology.Network { return p.nw }

// Config returns the fabric constants.
func (p *Pipe) Config() Config { return p.cfg }

// Stats returns a snapshot of this shard's fabric counters. In a sharded
// run, injections count on the source shard and deliveries on the
// destination shard; cluster-wide totals come from the merged registry.
func (p *Pipe) Stats() Stats {
	s := p.stats
	s.Dropped = make(map[DropReason]uint64, len(p.stats.Dropped))
	for k, v := range p.stats.Dropped {
		s.Dropped[k] = v
	}
	return s
}

// AttachHost registers the receive callback for a locally-owned host.
func (p *Pipe) AttachHost(h topology.NodeID, fn func(*Packet)) {
	if p.nw.Node(h).Kind != topology.Host {
		panic(fmt.Sprintf("fabric: %d is not a host", h))
	}
	p.deliver[h] = fn
}

// SetEgress installs the shard-boundary hook: packets terminating at a
// host with no local AttachHost callback are handed to fn together with
// their arrival time (strictly later than now by at least the cross-shard
// lookahead). The engine forwards them to the owning shard's pipe via
// Arrive.
func (p *Pipe) SetEgress(fn func(dst topology.NodeID, at sim.Time, pkt *Packet)) {
	p.egress = fn
}

// SetTransitHook installs a fault-injection hook invoked once per packet
// at delivery, exactly as on the wormhole fabric.
func (p *Pipe) SetTransitHook(fn func(*Packet) bool) { p.transitHook = fn }

// SetTracer wires (or removes, with nil) a packet-level event tracer.
func (p *Pipe) SetTracer(tr trace.Tracer) { p.tracer = tr }

// SerializationTime returns how long a packet of n bytes occupies a link.
func (p *Pipe) SerializationTime(n int) time.Duration {
	return time.Duration(float64(n) / p.cfg.LinkRate * 1e9)
}

func (p *Pipe) emitPkt(kind trace.Kind, pkt *Packet, note string) {
	if p.tracer == nil {
		return
	}
	p.tracer.Trace(trace.Event{
		At: p.k.Now(), Node: pkt.Src, Kind: kind, Peer: pkt.Dst,
		Gen: pkt.Gen, Seq: pkt.Seq, Msg: pkt.Msg, Note: note,
	})
}

func (p *Pipe) drop(pkt *Packet, reason DropReason) {
	if p.stats.Dropped == nil {
		p.stats.Dropped = make(map[DropReason]uint64)
	}
	p.stats.Dropped[reason]++
	p.reg.Counter("fabric.pkts_dropped", metrics.L("reason", reason.String())).Inc()
	p.emitPkt(trace.EvFabDrop, pkt, reason.String())
	if pkt.OnDropped != nil {
		pkt.OnDropped(reason)
	}
}

// Inject launches a packet from host src. The whole route is evaluated
// now against the shard's topology replica; on success the send DMA
// completes after one serialization time and the packet arrives at its
// terminal host after the uncontended cut-through latency.
func (p *Pipe) Inject(src topology.NodeID, pkt *Packet) {
	pkt.Src = src
	pkt.Injected = p.k.Now()
	p.stats.Injected++
	p.mx.Add("fabric.pkts_injected", 1)
	n := p.nw.Node(src)
	if n.Kind != topology.Host {
		panic(fmt.Sprintf("fabric: inject from non-host %s", n.Name))
	}
	// Any drop decided at injection must still complete the send DMA, or
	// the source NIC's transmit path wedges forever (same contract as the
	// wormhole fabric's no-route path).
	fail := func(reason DropReason) {
		p.drop(pkt, reason)
		if pkt.OnInjectDone != nil {
			pkt.OnInjectDone()
		}
	}

	l := n.Ports[0]
	if !p.nw.LinkUsable(l) {
		fail(DropNoRoute)
		return
	}
	if p.graySample(l.ID) {
		fail(DropGray)
		return
	}
	lat := p.cfg.PropDelay
	cur := l.Other(src).Node
	for _, port := range pkt.Route {
		node := p.nw.Node(cur)
		if node.Kind != topology.Switch {
			fail(DropBadRoute)
			return
		}
		if !node.Up {
			fail(DropDeadSwitch)
			return
		}
		lat += p.cfg.RouteDelay
		if port < 0 || port >= node.Radix() || node.Ports[port] == nil {
			fail(DropBadRoute)
			return
		}
		nl := node.Ports[port]
		if !p.nw.LinkUsable(nl) {
			fail(DropDeadLink)
			return
		}
		if p.graySample(nl.ID) {
			fail(DropGray)
			return
		}
		lat += p.cfg.PropDelay
		cur = nl.Other(cur).Node
	}
	term := p.nw.Node(cur)
	if term.Kind != topology.Host || !term.Up {
		fail(DropBadRoute)
		return
	}

	ser := p.SerializationTime(pkt.Size)
	p.k.After(ser, func() {
		if pkt.OnInjectDone != nil {
			pkt.OnInjectDone()
		}
	})
	at := p.k.Now().Add(lat + ser)
	if fn := p.deliver[cur]; fn != nil {
		dst := cur
		p.k.At(at, func() { p.Arrive(dst, pkt) })
		return
	}
	if p.egress == nil {
		fail(DropNoRoute)
		return
	}
	p.egress(cur, at, pkt)
}

// Arrive completes delivery of pkt to terminal host dst at the current
// instant. For cross-shard packets the engine calls this on the owning
// shard's pipe at the arrival time the source shard computed.
func (p *Pipe) Arrive(dst topology.NodeID, pkt *Packet) {
	if p.transitHook != nil && !p.transitHook(pkt) {
		p.drop(pkt, DropInjected)
		return
	}
	pkt.Delivered = p.k.Now()
	p.stats.Delivered++
	p.stats.BytesDelivered += uint64(pkt.Size)
	p.mx.Add("fabric.pkts_delivered", 1)
	p.mx.Add("fabric.bytes_delivered", uint64(pkt.Size))
	p.emitPkt(trace.EvDeliver, pkt, "")
	if fn := p.deliver[dst]; fn != nil {
		fn(pkt)
	}
}

// MinCrossLatency returns the smallest pipe-mode traversal latency between
// any ordered pair of distinct hosts whose shortest route crosses minHops
// switches — the conservative lookahead of the parallel engine. It
// excludes serialization time (a true lower bound for any packet size):
//
//	lookahead = minHops·(PropDelay + RouteDelay) + PropDelay
//
// Every cross-shard packet arrives at least this much later than its
// injection, so events exchanged at an epoch boundary can never land
// inside the epoch that produced them.
func (cfg Config) MinCrossLatency(minHops int) time.Duration {
	if minHops < 1 {
		minHops = 1
	}
	return time.Duration(minHops)*(cfg.PropDelay+cfg.RouteDelay) + cfg.PropDelay
}
