package workload

import (
	"fmt"
	"math/rand"
	"time"

	"sanft/internal/chaos"
	"sanft/internal/metrics"
	"sanft/internal/parsim"
	"sanft/internal/report"
	"sanft/internal/sim"
	"sanft/internal/topology"
	"sanft/internal/vmmc"
)

// Export names. Servers own the request, replication, and ack buffers;
// client hosts own the reply and stream-chunk buffers.
const (
	bufReq   = "wl-req"
	bufRepl  = "wl-repl"
	bufAck   = "wl-ack"
	bufReply = "wl-rep"
	bufChunk = "wl-str"
)

// ctlBytes sizes the small control messages (get requests, stream
// requests, replication acks, put replies).
const ctlBytes = 32

// opState is one in-flight operation, held in its client's fixed slot
// array. Slots, not maps, so every walk is deterministic.
type opState struct {
	active    bool
	kind      byte
	opID      uint64
	scheduled sim.Time
	deadline  sim.Time
	chunksGot int
	bytes     int
}

// clientState is one logical client. Exactly one generator process owns
// it; the reply handlers and the timeout sweeper touch it only from
// event context, which the sequential kernel serialises.
type clientState struct {
	idx     int             // global client index
	host    topology.NodeID // the host this client runs on
	local   int             // index among this host's clients
	primary int             // server index requests go to

	gate        sim.Gate // generator parks here when the window is full
	rng         *rand.Rand
	nextSeq     uint32
	outstanding int
	ops         [slotsPerClient]opState

	reqImp *vmmc.Import
}

// serverState is one server host's sending side. Servers are stateless:
// every routing decision derives from the opID in the message header, so
// a server needs no pending tables — only its imports.
type serverState struct {
	idx  int
	host topology.NodeID

	replImp *vmmc.Import   // to the backup's replication buffer (KV, ≥2 servers)
	ackImp  *vmmc.Import   // to the primary this server backs
	repImps []*vmmc.Import // reply buffer per client host
	strImps []*vmmc.Import // chunk buffer per client host (stream only)
}

// Driver wires one workload spec onto a chaos engine's cluster: exports,
// imports, server dispatchers, client reply handlers, the timeout
// sweeper, and the generator processes. Build it with Attach before the
// cluster runs; read the outcome with Result after it stops.
type Driver struct {
	E    *chaos.Engine
	Spec Spec

	clientHosts []topology.NodeID
	serverHosts []topology.NodeID
	clients     []*clientState
	servers     []*serverState

	run *chaos.Run
	lat *metrics.Histogram
	slo report.SLO

	maxOut int

	start   sim.Time
	windows []report.SLOWindow

	issued, completed, errors, spurious uint64
	payloadBytes                        uint64
	swept                               bool
}

// Attach builds the workload over the engine's cluster. clientHosts and
// serverHosts must be non-empty subsets of the cluster's hosts; logical
// clients are assigned round-robin over clientHosts, and client i's
// requests go to server i mod len(serverHosts). Call before the kernel
// runs; the generators start issuing as soon as it does.
func Attach(e *chaos.Engine, spec Spec, clientHosts, serverHosts []topology.NodeID) *Driver {
	spec = spec.withDefaults()
	if len(clientHosts) == 0 || len(serverHosts) == 0 {
		panic("workload: Attach needs at least one client host and one server host")
	}
	d := &Driver{
		E:           e,
		Spec:        spec,
		clientHosts: clientHosts,
		serverHosts: serverHosts,
		run:         e.NewExternalRun(),
		slo:         spec.SLO.WithDefaults(),
		start:       e.C.Now(),
	}
	d.lat = e.C.Metrics().Histogram("workload.latency_ns",
		metrics.L("proto", spec.Proto.String(), "mode", spec.Mode.String()))
	d.maxOut = slotsPerClient
	if spec.Mode == ModeClosed {
		d.maxOut = spec.Pipeline
	}

	// The traffic's own pacing must not read as delivery stalls: keep the
	// engine's stall floor above a few think times / arrival gaps so the
	// MTTR histogram records fault-induced delays only.
	pace := time.Duration(float64(spec.Clients) / spec.Rate * 1e9)
	if spec.Mode == ModeClosed {
		pace = spec.Think
	}
	if floor := 4 * pace; e.StallFloor < floor {
		e.StallFloor = floor
	}

	nCH, nSrv := len(clientHosts), len(serverHosts)
	reqSlot, repSlot, chunkSlot := spec.ValBytes, spec.ValBytes, spec.ChunkBytes

	// Exports first — imports resolve against them. Every buffer is sliced
	// into disjoint per-operation slots, so concurrent operations never
	// overwrite each other while in flight.
	reqExp := make([]*vmmc.Export, nSrv)
	replExp := make([]*vmmc.Export, nSrv)
	ackExp := make([]*vmmc.Export, nSrv)
	for s, h := range serverHosts {
		ep := e.C.Endpoint(h)
		reqExp[s] = ep.Export(bufReq, spec.Clients*slotsPerClient*reqSlot)
		if spec.Proto == ProtoKV && nSrv > 1 {
			replExp[s] = ep.Export(bufRepl, spec.Clients*slotsPerClient*reqSlot)
			ackExp[s] = ep.Export(bufAck, spec.Clients*slotsPerClient*ctlBytes)
		}
	}
	localCount := make([]int, nCH)
	for i := 0; i < spec.Clients; i++ {
		localCount[i%nCH]++
	}
	repExp := make([]*vmmc.Export, nCH)
	strExp := make([]*vmmc.Export, nCH)
	for j, h := range clientHosts {
		n := localCount[j]
		if n == 0 {
			n = 1 // keep the export non-empty so imports resolve
		}
		ep := e.C.Endpoint(h)
		repExp[j] = ep.Export(bufReply, n*slotsPerClient*repSlot)
		if spec.Proto == ProtoStream {
			strExp[j] = ep.Export(bufChunk, n*slotsPerClient*spec.Chunks*chunkSlot)
		}
	}

	mustImport := func(from topology.NodeID, to topology.NodeID, name string) *vmmc.Import {
		imp, err := e.C.Endpoint(from).Import(to, name)
		if err != nil {
			panic(fmt.Sprintf("workload: import %s %d->%d: %v", name, from, to, err))
		}
		return imp
	}

	// One request import per (client host, server) — clients sharing a
	// host and primary share it.
	reqImps := make([][]*vmmc.Import, nCH)
	for j := range reqImps {
		reqImps[j] = make([]*vmmc.Import, nSrv)
	}
	for i := 0; i < spec.Clients; i++ {
		j, s := i%nCH, i%nSrv
		if reqImps[j][s] == nil {
			reqImps[j][s] = mustImport(clientHosts[j], serverHosts[s], bufReq)
		}
		cl := &clientState{
			idx:     i,
			host:    clientHosts[j],
			local:   i / nCH,
			primary: s,
			rng:     rand.New(rand.NewSource(parsim.ShardSeed(spec.Seed, i))),
			reqImp:  reqImps[j][s],
		}
		d.clients = append(d.clients, cl)
	}

	for s, h := range serverHosts {
		sv := &serverState{idx: s, host: h}
		if spec.Proto == ProtoKV && nSrv > 1 {
			sv.replImp = mustImport(h, serverHosts[(s+1)%nSrv], bufRepl)
			sv.ackImp = mustImport(h, serverHosts[(s-1+nSrv)%nSrv], bufAck)
		}
		for _, ch := range clientHosts {
			sv.repImps = append(sv.repImps, mustImport(h, ch, bufReply))
			if spec.Proto == ProtoStream {
				sv.strImps = append(sv.strImps, mustImport(h, ch, bufChunk))
			}
		}
		d.servers = append(d.servers, sv)
	}

	for s := range d.servers {
		d.spawnServer(d.servers[s], reqExp[s], replExp[s], ackExp[s])
	}
	for j := range clientHosts {
		d.spawnClientHost(j, repExp[j], strExp[j])
	}
	d.spawnSweeper()
	d.spawnGenerators()
	return d
}

// Run exposes the chaos-run accounting (send/delivery sets) so campaigns
// can hand it to CheckInvariants.
func (d *Driver) Run() *chaos.Run { return d.run }

// Spurious returns the notifications that matched no live operation —
// late replies to slots already timed out and reused. They are expected
// under faults and are deliberately not SLO errors (the operation
// already was one, at its deadline).
func (d *Driver) Spurious() uint64 { return d.spurious }

// send wraps Import.Send with the exactly-once audit: every message the
// workload injects is recorded against its directed host pair, giving
// CheckInvariants the expectation side of the delivery invariant.
func (d *Driver) send(p *sim.Proc, imp *vmmc.Import, src, dst topology.NodeID, off int, data []byte) {
	id := imp.Send(p, off, data, true)
	d.run.NoteSent(chaos.Pair{Src: src, Dst: dst}, id)
}

// Slot-region offsets. g is the global request slot (client-major); the
// reply/chunk side uses the client's host-local index instead, because
// each client host sizes its buffers for its own clients only.
func (d *Driver) reqOff(opID uint64) int {
	return (opClient(opID)*slotsPerClient + opSlot(opID)) * d.Spec.ValBytes
}

func (d *Driver) repOff(opID uint64) int {
	local := opClient(opID) / len(d.clientHosts)
	return (local*slotsPerClient + opSlot(opID)) * d.Spec.ValBytes
}

func (d *Driver) chunkOff(opID uint64, chunk int) int {
	local := opClient(opID) / len(d.clientHosts)
	return ((local*slotsPerClient+opSlot(opID))*d.Spec.Chunks + chunk) * d.Spec.ChunkBytes
}

// clientHostIdx returns the client-host slice index serving a client.
func (d *Driver) clientHostIdx(clientIdx int) int { return clientIdx % len(d.clientHosts) }

// windowIdx maps a simulated instant to its SLO window.
func (d *Driver) windowIdx(t sim.Time) int {
	dt := t.Sub(d.start)
	if dt < 0 {
		return 0
	}
	return int(dt / d.slo.Window)
}

// win returns the window record, growing the series as the run advances.
func (d *Driver) win(idx int) *report.SLOWindow {
	for len(d.windows) <= idx {
		d.windows = append(d.windows, report.SLOWindow{})
	}
	return &d.windows[idx]
}

// completeOp settles one operation: latency from its scheduled arrival
// (open loop) or issue (closed loop), window accounting, and the slot
// freed for reuse. A completion that no longer matches a live operation
// is spurious — its operation already timed out.
func (d *Driver) completeOp(opID uint64, now sim.Time) {
	ci := opClient(opID)
	if ci < 0 || ci >= len(d.clients) {
		d.spurious++
		return
	}
	cl := d.clients[ci]
	op := &cl.ops[opSlot(opID)]
	if !op.active || op.opID != opID {
		d.spurious++
		return
	}
	lat := now.Sub(op.scheduled)
	d.lat.Observe(lat)
	w := d.win(d.windowIdx(now))
	w.Completed++
	if lat > d.slo.Latency {
		w.Slow++
	}
	d.completed++
	d.payloadBytes += uint64(op.bytes)
	op.active = false
	cl.outstanding--
	cl.gate.Signal()
}

// expireOp times one operation out, charging the error to the window of
// its deadline — the instant the user gave up, not the instant the
// sweeper noticed.
func (d *Driver) expireOp(cl *clientState, slot int) {
	op := &cl.ops[slot]
	op.active = false
	cl.outstanding--
	d.errors++
	d.win(d.windowIdx(op.deadline)).Errors++
	cl.gate.Signal()
}

// spawnServer starts the dispatcher processes for one server host. All
// routing derives from the opID header, so the handlers carry no state
// between messages.
func (d *Driver) spawnServer(sv *serverState, reqExp, replExp, ackExp *vmmc.Export) {
	e, spec := d.E, d.Spec
	nSrv := len(d.serverHosts)

	e.C.K.Spawn(fmt.Sprintf("wl-srv-req-%d", sv.host), func(p *sim.Proc) {
		for {
			n := reqExp.WaitNotification(p)
			e.NoteDelivered(d.run, chaos.Pair{Src: n.Src, Dst: sv.host}, n.MsgID)
			opID, kind, _ := decodeMsg(reqExp.Mem[n.Offset : n.Offset+n.Len])
			j := d.clientHostIdx(opClient(opID))
			switch kind {
			case kindReqRPC, kindReqGet:
				d.send(p, sv.repImps[j], sv.host, d.clientHosts[j], d.repOff(opID),
					encodeMsg(opID, kindReply, 0, spec.ValBytes))
			case kindReqPut:
				if sv.replImp == nil {
					// Single server (or non-KV misdirect): no replica to
					// wait for, acknowledge directly.
					d.send(p, sv.repImps[j], sv.host, d.clientHosts[j], d.repOff(opID),
						encodeMsg(opID, kindReply, 0, ctlBytes))
					break
				}
				d.send(p, sv.replImp, sv.host, d.serverHosts[(sv.idx+1)%nSrv], d.reqOff(opID),
					encodeMsg(opID, kindRepl, 0, spec.ValBytes))
			case kindReqStream:
				// Each transfer streams from its own process so one slow
				// client cannot head-of-line block the dispatcher.
				e.C.K.Spawn(fmt.Sprintf("wl-strm-%d-%d", sv.host, opID), func(p2 *sim.Proc) {
					for c := 0; c < spec.Chunks; c++ {
						d.send(p2, sv.strImps[j], sv.host, d.clientHosts[j], d.chunkOff(opID, c),
							encodeMsg(opID, kindChunk, uint64(c), spec.ChunkBytes))
					}
				})
			}
		}
	})

	if replExp != nil {
		e.C.K.Spawn(fmt.Sprintf("wl-srv-repl-%d", sv.host), func(p *sim.Proc) {
			for {
				n := replExp.WaitNotification(p)
				e.NoteDelivered(d.run, chaos.Pair{Src: n.Src, Dst: sv.host}, n.MsgID)
				opID, _, _ := decodeMsg(replExp.Mem[n.Offset : n.Offset+n.Len])
				// This server backs the primary that sent the replica; ack
				// back so it can release the put.
				d.send(p, sv.ackImp, sv.host, d.serverHosts[(sv.idx-1+nSrv)%nSrv],
					(opClient(opID)*slotsPerClient+opSlot(opID))*ctlBytes,
					encodeMsg(opID, kindAck, 0, ctlBytes))
			}
		})
	}
	if ackExp != nil {
		e.C.K.Spawn(fmt.Sprintf("wl-srv-ack-%d", sv.host), func(p *sim.Proc) {
			for {
				n := ackExp.WaitNotification(p)
				e.NoteDelivered(d.run, chaos.Pair{Src: n.Src, Dst: sv.host}, n.MsgID)
				opID, _, _ := decodeMsg(ackExp.Mem[n.Offset : n.Offset+n.Len])
				j := d.clientHostIdx(opClient(opID))
				d.send(p, sv.repImps[j], sv.host, d.clientHosts[j], d.repOff(opID),
					encodeMsg(opID, kindReply, 0, ctlBytes))
			}
		})
	}
}

// spawnClientHost starts the reply (and, for streams, chunk) handlers
// for one client host.
func (d *Driver) spawnClientHost(j int, repExp, strExp *vmmc.Export) {
	e := d.E
	host := d.clientHosts[j]
	e.C.K.Spawn(fmt.Sprintf("wl-cli-rep-%d", host), func(p *sim.Proc) {
		for {
			n := repExp.WaitNotification(p)
			e.NoteDelivered(d.run, chaos.Pair{Src: n.Src, Dst: host}, n.MsgID)
			opID, kind, _ := decodeMsg(repExp.Mem[n.Offset : n.Offset+n.Len])
			if kind == kindReply {
				d.completeOp(opID, p.Now())
			} else {
				d.spurious++
			}
		}
	})
	if strExp == nil {
		return
	}
	e.C.K.Spawn(fmt.Sprintf("wl-cli-str-%d", host), func(p *sim.Proc) {
		for {
			n := strExp.WaitNotification(p)
			e.NoteDelivered(d.run, chaos.Pair{Src: n.Src, Dst: host}, n.MsgID)
			opID, kind, _ := decodeMsg(strExp.Mem[n.Offset : n.Offset+n.Len])
			ci := opClient(opID)
			if kind != kindChunk || ci < 0 || ci >= len(d.clients) {
				d.spurious++
				continue
			}
			cl := d.clients[ci]
			op := &cl.ops[opSlot(opID)]
			if !op.active || op.opID != opID {
				d.spurious++
				continue
			}
			op.chunksGot++
			if op.chunksGot >= d.Spec.Chunks {
				d.completeOp(opID, p.Now())
			}
		}
	})
}

// spawnSweeper starts the timeout sweeper: a quarter-deadline tick over
// the fixed slot arrays, expiring operations past their deadline.
func (d *Driver) spawnSweeper() {
	tick := d.Spec.Timeout / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	d.E.C.K.Spawn("wl-sweeper", func(p *sim.Proc) {
		for {
			p.Sleep(tick)
			now := p.Now()
			for _, cl := range d.clients {
				for s := range cl.ops {
					if op := &cl.ops[s]; op.active && !now.Before(op.deadline) {
						d.expireOp(cl, s)
					}
				}
			}
		}
	})
}

// issueOp admits one operation — waiting on the client's gate while the
// outstanding window is full or the next slot is still occupied — then
// stamps its slot and sends the request. scheduled < 0 means "stamp at
// admission" (closed loop); open loop passes the virtual arrival time,
// so admission queueing counts toward latency (no coordinated omission).
func (d *Driver) issueOp(p *sim.Proc, cl *clientState, scheduled sim.Time) {
	seq := cl.nextSeq + 1
	for cl.outstanding >= d.maxOut || cl.ops[int(seq)%slotsPerClient].active {
		cl.gate.Wait(p)
	}
	cl.nextSeq = seq
	if scheduled < 0 {
		scheduled = p.Now()
	}

	spec := &d.Spec
	var kind byte
	reqLen, opBytes := ctlBytes, spec.ValBytes
	switch spec.Proto {
	case ProtoRPC:
		kind, reqLen = kindReqRPC, spec.ValBytes
	case ProtoKV:
		if cl.rng.Float64() < spec.GetFrac {
			kind = kindReqGet
		} else {
			kind, reqLen = kindReqPut, spec.ValBytes
		}
	case ProtoStream:
		kind = kindReqStream
		opBytes = spec.Chunks * spec.ChunkBytes
	}

	opID := makeOpID(cl.idx, seq)
	cl.ops[opSlot(opID)] = opState{
		active:    true,
		kind:      kind,
		opID:      opID,
		scheduled: scheduled,
		deadline:  scheduled.Add(spec.Timeout),
		bytes:     opBytes,
	}
	cl.outstanding++
	d.issued++
	d.win(d.windowIdx(scheduled)).Issued++
	d.send(p, cl.reqImp, cl.host, d.serverHosts[cl.primary], d.reqOff(opID),
		encodeMsg(opID, kind, 0, reqLen))
}

// Result assembles the SLO outcome after the cluster has stopped.
// Operations still open are swept as timeouts (charged to the earlier of
// their deadline and the end of the run). Call it once per driver.
func (d *Driver) Result(topo, fault string, elapsed time.Duration) report.SLOResult {
	if !d.swept {
		d.swept = true
		end := d.start.Add(elapsed)
		for _, cl := range d.clients {
			for s := range cl.ops {
				op := &cl.ops[s]
				if !op.active {
					continue
				}
				op.active = false
				cl.outstanding--
				d.errors++
				dl := op.deadline
				if dl.After(end) {
					dl = end
				}
				d.win(d.windowIdx(dl)).Errors++
			}
		}
	}
	return report.SLOResult{
		Scenario:     d.Spec.Scenario(),
		Topo:         topo,
		Fault:        fault,
		SLO:          d.slo,
		Issued:       d.issued,
		Completed:    d.completed,
		Errors:       d.errors,
		PayloadBytes: d.payloadBytes,
		ElapsedNS:    int64(elapsed),
		Latency:      d.lat.Snapshot(),
		Windows:      append([]report.SLOWindow(nil), d.windows...),
	}
}
