package workload

import (
	"strings"
	"testing"
	"time"

	"sanft/internal/chaos"
	"sanft/internal/report"
)

// An existing chaos campaign — its topology, fault schedule, and
// invariant oracle untouched — runs with production-shaped KV traffic
// injected in place of the synthetic workload, and the user-facing SLO
// result is extractable afterwards.
func TestCampaignWithInjectedTraffic(t *testing.T) {
	camp, ok := chaos.Find("link-flap")
	if !ok {
		t.Fatal("link-flap campaign missing")
	}
	var d *Driver
	spec := Spec{
		Proto: ProtoKV, Mode: ModeOpen,
		Clients: 4, Ops: 80, Rate: 2000, // ~40ms issue span, inside the flap window
	}
	rep := camp.RunWithTraffic(21, nil, Inject(spec, &d))
	if !rep.Passed() {
		t.Fatalf("campaign failed under injected traffic:\n%s", rep)
	}
	if d == nil {
		t.Fatal("injector never ran")
	}
	// The campaign report's delivery accounting must be the injected
	// traffic's, not the synthetic default's fixed pair × msg grid.
	if rep.Expected == 0 || rep.Expected != rep.Delivered {
		t.Fatalf("expected %d delivered %d", rep.Expected, rep.Delivered)
	}
	if rep.Duplicates != 0 {
		t.Fatalf("%d duplicate notifications", rep.Duplicates)
	}
	res := d.Result("chain", "link-flap", 20*time.Second)
	if res.Issued != 80 || res.Completed+res.Errors != 80 {
		t.Fatalf("issued=%d completed=%d errors=%d", res.Issued, res.Completed, res.Errors)
	}
	if res.Completed == 0 {
		t.Fatal("no completions through the flap schedule")
	}
}

// The same injected campaign is byte-deterministic: identical seeds give
// identical event logs and SLO rows.
func TestInjectedCampaignDeterministic(t *testing.T) {
	dump := func() (string, string) {
		camp, _ := chaos.Find("link-flap")
		var d *Driver
		rep := camp.RunWithTraffic(33, nil, Inject(Spec{
			Proto: ProtoKV, Mode: ModeOpen, Clients: 4, Ops: 40, Rate: 2000,
		}, &d))
		res := d.Result("chain", "link-flap", 20*time.Second)
		tb := report.NewSLOTable("inject", []report.SLOResult{res})
		return rep.EventLog, strings.Join(tb.Cells[0], "|")
	}
	log1, row1 := dump()
	log2, row2 := dump()
	if log1 != log2 {
		t.Fatal("event logs differ across identical seeds")
	}
	if row1 != row2 {
		t.Fatalf("SLO rows differ:\n%s\n%s", row1, row2)
	}
}
