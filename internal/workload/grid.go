package workload

import (
	"fmt"
	"time"

	"sanft/internal/chaos"
	"sanft/internal/core"
	"sanft/internal/mapping"
	"sanft/internal/parsim"
	"sanft/internal/report"
	"sanft/internal/retrans"
	"sanft/internal/topology"
)

// Inject adapts a workload spec into a chaos.TrafficInjector, so any
// existing campaign — its topology, fault schedule, and invariant
// oracle — can be driven by production-shaped traffic instead of the
// synthetic default. The hosts come from the default workload's pairs
// (in first-appearance order, so the choice is deterministic), split
// into a server prefix and a client remainder. When out is non-nil it
// receives the driver, for SLO extraction after the run.
func Inject(spec Spec, out **Driver) chaos.TrafficInjector {
	return func(e *chaos.Engine, dflt chaos.Workload) *chaos.Run {
		hosts := pairHosts(dflt)
		if len(hosts) < 2 {
			hosts = e.C.Hosts
		}
		if len(hosts) < 2 {
			panic("workload: Inject needs at least two hosts")
		}
		nSrv := serverSplit(spec, len(hosts))
		d := Attach(e, spec, hosts[nSrv:], hosts[:nSrv])
		if out != nil {
			*out = d
		}
		return d.Run()
	}
}

// pairHosts lists the distinct hosts a workload's pairs touch, in first
// appearance order.
func pairHosts(w chaos.Workload) []topology.NodeID {
	seen := make(map[topology.NodeID]bool)
	var out []topology.NodeID
	for _, pr := range w.Pairs {
		for _, h := range [2]topology.NodeID{pr.Src, pr.Dst} {
			if !seen[h] {
				seen[h] = true
				out = append(out, h)
			}
		}
	}
	return out
}

// serverSplit picks how many of n hosts serve: about a third, at least
// one, and at least two for KV (when possible) so puts actually
// replicate.
func serverSplit(spec Spec, n int) int {
	nSrv := n / 3
	if nSrv < 1 {
		nSrv = 1
	}
	if spec.Proto == ProtoKV && nSrv < 2 && n >= 3 {
		nSrv = 2
	}
	return nSrv
}

// FaultNames are the fault scenarios the grid knows how to install.
var FaultNames = []string{"none", "linkflap", "gray", "drop"}

// InstallFault schedules one named fault against the engine's cluster.
// Route-targeted faults hit a trunk on the a→b path so the fault lands
// on live traffic rather than a redundant spare.
func InstallFault(e *chaos.Engine, fault string, a, b topology.NodeID) error {
	const start = 2 * time.Millisecond
	routeLinks := func() []*topology.Link {
		links := chaos.RouteTrunks(e.C.Net, a, b)
		if len(links) == 0 {
			links = chaos.TrunkLinks(e.C.Net)
		}
		return links
	}
	switch fault {
	case "", "none":
	case "linkflap":
		links := routeLinks()
		if len(links) == 0 {
			return fmt.Errorf("workload: no trunk links to flap")
		}
		e.Install(chaos.LinkFlap{Link: links[0], Start: start,
			Down: 3 * time.Millisecond, Up: 3 * time.Millisecond, Cycles: 6})
	case "gray":
		links := routeLinks()
		if len(links) == 0 {
			return fmt.Errorf("workload: no trunk links to gray")
		}
		e.Install(chaos.GrayLinks{Links: links[:1], Rate: 0.15, Start: start,
			Dur: 60 * time.Millisecond})
	case "drop":
		e.Install(chaos.DropRamp{Rates: []float64{0.05, 0}, Start: start,
			Step: 30 * time.Millisecond})
	default:
		return fmt.Errorf("workload: unknown fault %q (want one of %v)", fault, FaultNames)
	}
	return nil
}

// GridOpts is one sanload campaign: the cross product of topologies,
// workload specs, and fault scenarios, each cell run Reps times with
// derived seeds and merged.
type GridOpts struct {
	Topos  []string // topology specs (topology.ParseSpec syntax)
	Specs  []Spec   // workload cells (proto × mode, pre-built)
	Faults []string // entries of FaultNames

	Seed int64
	// Reps is the replica count per cell (default 1). Replica results
	// merge in index order, so any pool worker count yields the same
	// tables.
	Reps int
	// Dur is the simulated span per replica (default 500ms).
	Dur time.Duration
	// Hosts is how many hosts each replica drives, strided across the
	// topology's host list (default 9).
	Hosts int

	Pool parsim.Pool
}

// GridResult is a finished grid: one merged SLOResult per cell, in
// topo-major, then spec, then fault order, plus every invariant
// violation any replica produced.
type GridResult struct {
	Results    []report.SLOResult
	Violations []string
}

type gridCell struct {
	topo  string
	spec  Spec
	fault string
}

type replicaOut struct {
	res  report.SLOResult
	vios []string
}

// RunGrid runs the campaign through the parsim pool. Inputs are
// validated up front so a bad spec fails fast instead of panicking a
// worker.
func RunGrid(o GridOpts) (GridResult, error) {
	if o.Reps <= 0 {
		o.Reps = 1
	}
	if o.Dur <= 0 {
		o.Dur = 500 * time.Millisecond
	}
	if o.Hosts <= 0 {
		o.Hosts = 9
	}
	if len(o.Topos) == 0 || len(o.Specs) == 0 {
		return GridResult{}, fmt.Errorf("workload: grid needs at least one topology and one spec")
	}
	if len(o.Faults) == 0 {
		o.Faults = []string{"none"}
	}
	for _, t := range o.Topos {
		if _, err := topology.ParseSpec(t); err != nil {
			return GridResult{}, err
		}
	}
	for _, f := range o.Faults {
		ok := false
		for _, known := range FaultNames {
			if f == known {
				ok = true
			}
		}
		if !ok {
			return GridResult{}, fmt.Errorf("workload: unknown fault %q (want one of %v)", f, FaultNames)
		}
	}

	var cells []gridCell
	for _, t := range o.Topos {
		for _, s := range o.Specs {
			for _, f := range o.Faults {
				cells = append(cells, gridCell{topo: t, spec: s, fault: f})
			}
		}
	}
	jobs := len(cells) * o.Reps
	outs := parsim.Map(o.Pool, jobs, func(i int) replicaOut {
		cell := cells[i/o.Reps]
		return runReplica(cell, parsim.ShardSeed(o.Seed, i), o.Dur, o.Hosts)
	})

	g := GridResult{Results: make([]report.SLOResult, len(cells))}
	for i, out := range outs {
		if i%o.Reps == 0 {
			g.Results[i/o.Reps] = out.res
		} else {
			g.Results[i/o.Reps].Merge(out.res)
		}
		g.Violations = append(g.Violations, out.vios...)
	}
	return g, nil
}

// runReplica builds one cluster, attaches the workload, runs the fault
// schedule, and audits the run. Each replica owns a fresh topology
// build — faults mutate the network, so replicas cannot share one.
func runReplica(cell gridCell, seed int64, dur time.Duration, nHosts int) replicaOut {
	b, err := topology.ParseSpec(cell.topo)
	if err != nil {
		panic(fmt.Sprintf("workload: topo %q validated then failed: %v", cell.topo, err))
	}
	hosts := strideHosts(b.Hosts, nHosts)
	c := core.New(core.Config{
		Net:   b.Net,
		Hosts: hosts,
		FT:    true,
		Retrans: retrans.Config{
			QueueSize:         16,
			Interval:          time.Millisecond,
			PermFailThreshold: 8 * time.Millisecond,
		},
		Mapper: true,
		// Scan only the ports the fabric actually has: the default radix
		// would burn probe timeouts on ports that cannot exist.
		MapperCfg: mapping.Config{MaxRadix: maxSwitchRadix(b.Net)},
		Seed:      seed,
	})
	e := chaos.NewEngine(c, seed)

	spec := cell.spec
	spec.Seed = seed
	nSrv := serverSplit(spec, len(hosts))
	servers, clients := hosts[:nSrv], hosts[nSrv:]
	d := Attach(e, spec, clients, servers)
	if err := InstallFault(e, cell.fault, clients[0], servers[0]); err != nil {
		panic(fmt.Sprintf("workload: fault %q validated then failed: %v", cell.fault, err))
	}

	c.RunFor(dur)
	c.Stop()

	out := replicaOut{res: d.Result(cell.topo, cell.fault, dur)}
	// The grid's faults all heal (flaps end, the drop ramp returns to
	// zero), so the full contract applies: complete delivery, no
	// duplicates, bounded remapping.
	for _, v := range chaos.CheckInvariants(e, d.Run(), chaos.CheckOpts{MaxRemapAttempts: 400}) {
		out.vios = append(out.vios, fmt.Sprintf("%s %s %s seed=%d %s",
			spec.Scenario(), cell.topo, cell.fault, seed, v))
	}
	return out
}

// strideHosts picks n hosts spread evenly across the list, so a replica
// on a big fabric exercises distant pods rather than one rack.
func strideHosts(all []topology.NodeID, n int) []topology.NodeID {
	if n <= 0 || n >= len(all) {
		return all
	}
	stride := len(all) / n
	out := make([]topology.NodeID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, all[i*stride])
	}
	return out
}

// maxSwitchRadix returns the largest switch radix in the fabric.
func maxSwitchRadix(nw *topology.Network) int {
	r := 0
	for _, id := range nw.Switches() {
		if k := nw.Node(id).Radix(); k > r {
			r = k
		}
	}
	if r == 0 {
		r = 16
	}
	return r
}
