package workload

import (
	"testing"
	"time"

	"sanft/internal/chaos"
	"sanft/internal/core"
	"sanft/internal/mapping"
	"sanft/internal/retrans"
	"sanft/internal/topology"
)

// rig builds a small fat-tree cluster with two servers and four client
// hosts spread across pods, attaches the spec, runs, and audits.
type rig struct {
	c *core.Cluster
	e *chaos.Engine
	d *Driver
}

func newRig(t *testing.T, spec Spec, seed int64, install func(e *chaos.Engine, clients, servers []topology.NodeID)) *rig {
	t.Helper()
	ft := topology.FatTree(4)
	hosts := []topology.NodeID{
		ft.PodHosts[0][0], ft.PodHosts[1][0], ft.PodHosts[2][0],
		ft.PodHosts[3][0], ft.PodHosts[0][1], ft.PodHosts[1][1],
	}
	c := core.New(core.Config{
		Net: ft.Net, Hosts: hosts, FT: true,
		Retrans: retrans.Config{
			QueueSize:         16,
			Interval:          time.Millisecond,
			PermFailThreshold: 8 * time.Millisecond,
		},
		Mapper:    true,
		MapperCfg: mapping.Config{MaxRadix: 4},
		Seed:      seed,
	})
	e := chaos.NewEngine(c, seed)
	servers, clients := hosts[:2], hosts[2:]
	d := Attach(e, spec, clients, servers)
	if install != nil {
		install(e, clients, servers)
	}
	return &rig{c: c, e: e, d: d}
}

func (r *rig) run(t *testing.T, dur time.Duration) {
	t.Helper()
	r.c.RunFor(dur)
	r.c.Stop()
}

func (r *rig) checkClean(t *testing.T) {
	t.Helper()
	for _, v := range chaos.CheckInvariants(r.e, r.d.Run(), chaos.CheckOpts{MaxRemapAttempts: 400}) {
		t.Errorf("invariant: %s", v)
	}
}

// Every protocol under both disciplines completes its full budget on a
// healthy fabric, with zero errors, zero spurious completions, and a
// clean invariant audit.
func TestProtocolsCompleteCleanly(t *testing.T) {
	for _, proto := range []Proto{ProtoRPC, ProtoKV, ProtoStream} {
		for _, mode := range []Mode{ModeOpen, ModeClosed} {
			t.Run(proto.String()+"/"+mode.String(), func(t *testing.T) {
				spec := Spec{
					Proto: proto, Mode: mode,
					Clients: 4, Ops: 60, Rate: 40000,
					Think: time.Millisecond, Pipeline: 2,
				}
				r := newRig(t, spec, 7, nil)
				r.run(t, 300*time.Millisecond)
				res := r.d.Result("fattree:4", "none", 300*time.Millisecond)
				if res.Issued != 60 || res.Completed != 60 || res.Errors != 0 {
					t.Fatalf("issued=%d completed=%d errors=%d, want 60/60/0",
						res.Issued, res.Completed, res.Errors)
				}
				if res.Latency.Count != 60 {
					t.Fatalf("latency histogram saw %d ops, want 60", res.Latency.Count)
				}
				if r.d.Spurious() != 0 {
					t.Fatalf("%d spurious completions on a healthy fabric", r.d.Spurious())
				}
				if res.PayloadBytes == 0 {
					t.Fatal("no payload accounted")
				}
				want := uint64(60 * 256)
				if proto == ProtoStream {
					want = 60 * 4 * 256
				}
				if res.PayloadBytes != want {
					t.Fatalf("payload %d, want %d", res.PayloadBytes, want)
				}
				r.checkClean(t)
			})
		}
	}
}

// A KV run under a trunk flap on a live route still settles every
// operation — completed or expired — and the exactly-once audit holds.
func TestKVUnderLinkFlap(t *testing.T) {
	spec := Spec{Proto: ProtoKV, Mode: ModeOpen, Clients: 4, Ops: 80, Rate: 20000}
	r := newRig(t, spec, 11, func(e *chaos.Engine, clients, servers []topology.NodeID) {
		if err := InstallFault(e, "linkflap", clients[0], servers[0]); err != nil {
			t.Fatal(err)
		}
	})
	r.run(t, 500*time.Millisecond)
	res := r.d.Result("fattree:4", "linkflap", 500*time.Millisecond)
	if res.Issued != 80 {
		t.Fatalf("issued %d, want 80", res.Issued)
	}
	if res.Completed+res.Errors != 80 {
		t.Fatalf("completed %d + errors %d != 80", res.Completed, res.Errors)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed under a transient flap")
	}
	r.checkClean(t)
}

// The SLO result feeds the report layer: windows cover the active span
// and the scenario label matches the spec.
func TestResultShape(t *testing.T) {
	spec := Spec{Proto: ProtoRPC, Mode: ModeClosed, Clients: 2, Ops: 20}
	r := newRig(t, spec, 3, nil)
	r.run(t, 200*time.Millisecond)
	res := r.d.Result("fattree:4", "none", 200*time.Millisecond)
	if res.Scenario != "rpc/closed" || res.Topo != "fattree:4" || res.Fault != "none" {
		t.Fatalf("labels %q %q %q", res.Scenario, res.Topo, res.Fault)
	}
	if len(res.Windows) == 0 {
		t.Fatal("no SLO windows recorded")
	}
	var issued uint64
	for _, w := range res.Windows {
		issued += w.Issued
	}
	if issued != res.Issued {
		t.Fatalf("window issued sum %d != total %d", issued, res.Issued)
	}
	if res.SLOMinutesLost() != 0 {
		t.Fatalf("healthy run lost %.4f SLO-minutes", res.SLOMinutesLost())
	}
}

// The grid runner merges replicas per cell and audits every replica.
func TestGridSmoke(t *testing.T) {
	g, err := RunGrid(GridOpts{
		Topos:  []string{"fattree:4"},
		Specs:  []Spec{{Proto: ProtoKV, Mode: ModeOpen, Clients: 4, Ops: 40}},
		Faults: []string{"none", "linkflap"},
		Seed:   5,
		Reps:   2,
		Hosts:  6,
		Dur:    400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Results) != 2 {
		t.Fatalf("got %d cells, want 2", len(g.Results))
	}
	for _, v := range g.Violations {
		t.Errorf("violation: %s", v)
	}
	for i, res := range g.Results {
		if res.Issued != 80 { // 40 ops × 2 replicas
			t.Errorf("cell %d issued %d, want 80", i, res.Issued)
		}
	}
	if g.Results[0].Fault != "none" || g.Results[1].Fault != "linkflap" {
		t.Fatalf("cell order %q, %q", g.Results[0].Fault, g.Results[1].Fault)
	}
}

// Bad grid inputs fail fast with errors, not worker panics.
func TestGridValidation(t *testing.T) {
	if _, err := RunGrid(GridOpts{Topos: []string{"nosuch:1"},
		Specs: []Spec{{}}}); err == nil {
		t.Fatal("bad topology accepted")
	}
	if _, err := RunGrid(GridOpts{Topos: []string{"fattree:4"},
		Specs: []Spec{{}}, Faults: []string{"meteor"}}); err == nil {
		t.Fatal("bad fault accepted")
	}
}
