// Determinism gates for the production traffic tier. External test
// package: proptest imports workload (for GenWorkloadSpec), so these
// tests live outside the workload package to keep the import graph a
// DAG.
package workload_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"sanft/internal/parsim"
	"sanft/internal/proptest"
	"sanft/internal/report"
	"sanft/internal/workload"
)

// gridDump runs one grid and renders everything observable — the SLO
// table JSON (quantiles, goodput, windows via bad_windows) plus every
// invariant violation — as the byte blob the determinism gates compare.
func gridDump(t testing.TB, pool parsim.Pool, seed int64, specs []workload.Spec, faults []string, dur time.Duration) []byte {
	t.Helper()
	g, err := workload.RunGrid(workload.GridOpts{
		Topos:  []string{"fattree:4"},
		Specs:  specs,
		Faults: faults,
		Seed:   seed,
		Reps:   2,
		Hosts:  6,
		Dur:    dur,
		Pool:   pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.Write(&buf, report.NewSLOTable("grid", g.Results), true); err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Violations {
		fmt.Fprintln(&buf, v)
	}
	return buf.Bytes()
}

// Each protocol's full campaign — open-loop traffic through a link-flap
// schedule, invariants audited — is byte-deterministic from its seed.
func TestProtocolsDeterministicUnderFlap(t *testing.T) {
	for _, proto := range []workload.Proto{workload.ProtoRPC, workload.ProtoKV, workload.ProtoStream} {
		t.Run(proto.String(), func(t *testing.T) {
			spec := workload.Spec{Proto: proto, Mode: workload.ModeOpen,
				Clients: 4, Ops: 60, Rate: 20000}
			proptest.RequireDeterministic(t, 17, func(seed int64) []byte {
				return gridDump(t, parsim.Pool{Workers: 2}, seed,
					[]workload.Spec{spec}, []string{"linkflap"}, 400*time.Millisecond)
			})
		})
	}
}

// Seed-generated workload specs (random protocol, discipline, and
// sizing) run deterministically too — the property, not just the three
// hand-picked cases.
func TestGeneratedSpecsDeterministic(t *testing.T) {
	for i := 0; i < 4; i++ {
		seed := int64(100 + 37*i)
		spec := proptest.GenWorkloadSpec(seed)
		t.Run(fmt.Sprintf("seed=%d_%s", seed, spec.Scenario()), func(t *testing.T) {
			proptest.RequireDeterministic(t, seed, func(s int64) []byte {
				return gridDump(t, parsim.Pool{Workers: 2}, s,
					[]workload.Spec{spec}, []string{"linkflap"}, time.Second)
			})
		})
	}
}

// The workers gate: a KV campaign under link flaps produces
// byte-identical dumps whether the parsim pool runs 1, 2, or 4 OS
// workers. Replica parallelism must never leak into results.
func TestGridWorkerCountInvariance(t *testing.T) {
	specs := []workload.Spec{{Proto: workload.ProtoKV, Mode: workload.ModeOpen,
		Clients: 4, Ops: 40}}
	faults := []string{"none", "linkflap"}
	d1 := gridDump(t, parsim.Pool{Workers: 1}, 9, specs, faults, 400*time.Millisecond)
	d2 := gridDump(t, parsim.Pool{Workers: 2}, 9, specs, faults, 400*time.Millisecond)
	d4 := gridDump(t, parsim.Pool{Workers: 4}, 9, specs, faults, 400*time.Millisecond)
	if !bytes.Equal(d1, d2) {
		t.Fatal("workers 1 and 2 dumps differ")
	}
	if !bytes.Equal(d1, d4) {
		t.Fatal("workers 1 and 4 dumps differ")
	}
}
