// Package workload is the production traffic tier: deterministic load
// generators layered on VMMC that restate the platform's fault tolerance
// in user-visible terms — request latency quantiles, goodput, error
// rates, and SLO-minutes lost — instead of protocol counters.
//
// Two generator disciplines drive three application protocols:
//
//   - Open loop: a seeded Poisson arrival process at a target offered
//     load. Arrival times are laid out on a virtual clock independent of
//     completions, and an operation's latency is measured from its
//     scheduled arrival — including any time spent queueing for an
//     admission slot — so the generator is backpressure-aware without
//     coordinated omission: a stalled server inflates the measured
//     latencies of the requests that piled up behind the stall, exactly
//     as real users would have experienced it.
//   - Closed loop: N simulated clients, each issuing up to Pipeline
//     requests, thinking (exponentially, seeded) between issues. Latency
//     is measured from issue, the classic interactive-client model.
//
// The protocols, all built on VMMC deposits with completion
// notifications:
//
//   - RPC: request to a server, reply to the client.
//   - KV: get (request/reply) and put with primary-backup replication —
//     the put travels client → primary → backup → ack → reply, so a
//     fault on any of the three legs surfaces in the client's latency.
//   - Stream: a DHT-style chunked transfer — one request, Chunks
//     separate messages back, completion when the last chunk lands.
//
// Every operation lives in a per-client slot: requests, replies, acks,
// and chunks deposit into disjoint slot regions of pre-sized exports, so
// concurrent operations never overwrite each other while in flight, and
// all bookkeeping walks fixed arrays (never Go maps), keeping runs
// byte-deterministic. Send-side and delivery accounting feed the chaos
// engine's external-run oracle, so the same invariant checker that
// audits synthetic campaigns audits production-shaped traffic.
package workload

import (
	"encoding/binary"
	"fmt"
	"strings"
	"time"

	"sanft/internal/report"
)

// Proto selects the application protocol a generator drives.
type Proto uint8

const (
	// ProtoRPC is request/response against a single server.
	ProtoRPC Proto = iota
	// ProtoKV is get/put with primary-backup replication for puts.
	ProtoKV
	// ProtoStream is a chunked transfer: one request, many chunk
	// messages back.
	ProtoStream
)

var protoNames = [...]string{"rpc", "kv", "stream"}

func (p Proto) String() string {
	if int(p) < len(protoNames) {
		return protoNames[p]
	}
	return fmt.Sprintf("proto(%d)", uint8(p))
}

// ParseProto resolves a CLI protocol name.
func ParseProto(s string) (Proto, error) {
	for i, n := range protoNames {
		if strings.EqualFold(s, n) {
			return Proto(i), nil
		}
	}
	return 0, fmt.Errorf("workload: unknown protocol %q (want rpc, kv, or stream)", s)
}

// Mode selects the generator discipline.
type Mode uint8

const (
	// ModeOpen offers load at a target rate regardless of completions.
	ModeOpen Mode = iota
	// ModeClosed issues from N clients with think time and pipelining.
	ModeClosed
)

var modeNames = [...]string{"open", "closed"}

func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ParseMode resolves a CLI mode name.
func ParseMode(s string) (Mode, error) {
	for i, n := range modeNames {
		if strings.EqualFold(s, n) {
			return Mode(i), nil
		}
	}
	return 0, fmt.Errorf("workload: unknown mode %q (want open or closed)", s)
}

// slotsPerClient bounds each logical client's in-flight operations; it is
// also the slot-region count provisioned per client in every export.
const slotsPerClient = 16

// Spec describes one workload: the protocol, the generator discipline,
// and the sizing knobs. The zero value of any field takes the default
// noted on it; Seed fixes every random choice (arrival gaps, think
// times, get/put mix).
type Spec struct {
	Proto Proto
	Mode  Mode
	Seed  int64

	// Clients is the number of logical clients (default 8). Clients are
	// assigned round-robin to the client hosts.
	Clients int
	// Ops is the total operation count across all clients (default 400).
	Ops int
	// Rate is the open-loop aggregate offered load in ops/second
	// (default 20000).
	Rate float64
	// Think is the closed-loop mean think time per client, drawn
	// exponentially (default 2ms). Zero-capable via ThinkNone.
	Think time.Duration
	// Pipeline is the closed-loop per-client outstanding-request window
	// (default 1, clamped to the slot count).
	Pipeline int

	// ValBytes sizes RPC requests/replies and KV values (default 256,
	// min 32 — headers ride inside the payload).
	ValBytes int
	// Chunks is the stream transfer length in messages (default 4).
	Chunks int
	// ChunkBytes sizes each stream chunk (default ValBytes).
	ChunkBytes int
	// GetFrac is the KV read fraction (default 0.5).
	GetFrac float64

	// Timeout is the operation deadline, measured from the scheduled
	// arrival (default 250ms). A timed-out operation is an SLO error.
	Timeout time.Duration

	// SLO is the contract the run is judged against (zero fields take
	// report.DefaultSLO).
	SLO report.SLO
}

// withDefaults fills zero fields.
func (s Spec) withDefaults() Spec {
	if s.Clients == 0 {
		s.Clients = 8
	}
	if s.Ops == 0 {
		s.Ops = 400
	}
	if s.Rate == 0 {
		s.Rate = 20000
	}
	if s.Think == 0 {
		s.Think = 2 * time.Millisecond
	}
	if s.Pipeline == 0 {
		s.Pipeline = 1
	}
	if s.Pipeline > slotsPerClient {
		s.Pipeline = slotsPerClient
	}
	if s.ValBytes < 32 {
		if s.ValBytes == 0 {
			s.ValBytes = 256
		} else {
			s.ValBytes = 32
		}
	}
	if s.Chunks == 0 {
		s.Chunks = 4
	}
	if s.ChunkBytes < 32 {
		if s.ChunkBytes == 0 {
			s.ChunkBytes = s.ValBytes
		} else {
			s.ChunkBytes = 32
		}
	}
	if s.GetFrac == 0 {
		s.GetFrac = 0.5
	}
	if s.Timeout == 0 {
		s.Timeout = 250 * time.Millisecond
	}
	return s
}

// Scenario labels the spec for SLO rows: "kv/open" and friends.
func (s Spec) Scenario() string { return s.Proto.String() + "/" + s.Mode.String() }

// Message kinds, carried in the header every deposit starts with.
const (
	kindReqRPC byte = iota + 1
	kindReqGet
	kindReqPut
	kindReqStream
	kindRepl  // primary → backup replication of a put
	kindAck   // backup → primary replication ack
	kindReply // server → client completion
	kindChunk // server → client stream chunk
)

// headerLen is the wire header: opID (8) + kind (1) + aux (8), padded to
// a fixed prefix inside every message payload.
const headerLen = 24

// encodeMsg builds a message of the given total size whose first bytes
// carry the header. size is clamped up to headerLen.
func encodeMsg(opID uint64, kind byte, aux uint64, size int) []byte {
	if size < headerLen {
		size = headerLen
	}
	b := make([]byte, size)
	binary.LittleEndian.PutUint64(b[0:8], opID)
	b[8] = kind
	binary.LittleEndian.PutUint64(b[9:17], aux)
	return b
}

// decodeMsg reads the header back from a deposited message.
func decodeMsg(b []byte) (opID uint64, kind byte, aux uint64) {
	if len(b) < headerLen {
		return 0, 0, 0
	}
	return binary.LittleEndian.Uint64(b[0:8]), b[8], binary.LittleEndian.Uint64(b[9:17])
}

// opID packs (client index, sequence number); both sides derive routing
// and slot placement from it alone.
func makeOpID(clientIdx int, seq uint32) uint64 {
	return uint64(clientIdx+1)<<32 | uint64(seq)
}

func opClient(opID uint64) int { return int(opID>>32) - 1 }
func opSeq(opID uint64) uint32 { return uint32(opID) }
func opSlot(opID uint64) int   { return int(opSeq(opID)) % slotsPerClient }
