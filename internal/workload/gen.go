package workload

import (
	"fmt"
	"time"

	"sanft/internal/sim"
)

// opsFor splits the total operation budget over clients: the first
// Ops mod Clients clients carry one extra.
func (d *Driver) opsFor(clientIdx int) int {
	n := d.Spec.Ops / d.Spec.Clients
	if clientIdx < d.Spec.Ops%d.Spec.Clients {
		n++
	}
	return n
}

// spawnGenerators starts one generator process per logical client, in
// the discipline the spec selects.
func (d *Driver) spawnGenerators() {
	for _, cl := range d.clients {
		cl := cl
		switch d.Spec.Mode {
		case ModeOpen:
			d.E.C.K.Spawn(fmt.Sprintf("wl-open-%d", cl.idx), func(p *sim.Proc) {
				d.runOpen(p, cl)
			})
		case ModeClosed:
			d.E.C.K.Spawn(fmt.Sprintf("wl-closed-%d", cl.idx), func(p *sim.Proc) {
				d.runClosed(p, cl)
			})
		}
	}
}

// runOpen is the open-loop discipline: arrivals are laid out on a
// virtual Poisson clock at this client's share of the aggregate offered
// rate, independent of completions. When the system falls behind, the
// generator does not slow down — backlogged arrivals issue immediately
// but keep their original scheduled stamps, so the latency they accrue
// while queueing for an admission slot is measured, not omitted.
func (d *Driver) runOpen(p *sim.Proc, cl *clientState) {
	meanNS := float64(d.Spec.Clients) / d.Spec.Rate * 1e9
	next := d.start
	for k, n := 0, d.opsFor(cl.idx); k < n; k++ {
		next = next.Add(time.Duration(cl.rng.ExpFloat64() * meanNS))
		if now := p.Now(); next.After(now) {
			p.Sleep(next.Sub(now))
		}
		d.issueOp(p, cl, next)
	}
}

// runClosed is the closed-loop discipline: the client issues up to
// Pipeline requests, thinking (exponentially) between issues, and the
// latency clock starts at admission — a client waiting on its own
// outstanding window is idle, not suffering.
func (d *Driver) runClosed(p *sim.Proc, cl *clientState) {
	for k, n := 0, d.opsFor(cl.idx); k < n; k++ {
		if k > 0 && d.Spec.Think > 0 {
			p.Sleep(time.Duration(cl.rng.ExpFloat64() * float64(d.Spec.Think)))
		}
		d.issueOp(p, cl, -1)
	}
}
