// Package apps implements the three SPLASH-2 applications of the paper's
// evaluation (§5.1.4, Table 2, Figure 9), running on the SVM substrate
// over the simulated cluster:
//
//   - FFT: a six-step 1-D complex FFT (transpose / row FFT / twiddle /
//     transpose / row FFT / transpose). Single-writer, bandwidth-bound:
//     the transposes are all-to-all page traffic.
//   - RadixLocal: LSD integer radix sort with per-digit histogram
//     exchange and scattered key redistribution — fine-grained,
//     latency-sensitive accesses.
//   - WaterNSquared: O(n²) molecular dynamics with lock-guarded force
//     accumulation — high compute-to-communication ratio, heavy lock
//     synchronization.
//
// The kernels do real arithmetic on real data (results are validated
// against serial references in tests); the virtual time their computation
// takes is charged through a cost model calibrated to the paper's 450 MHz
// Pentium II hosts.
package apps

import (
	"fmt"
	"time"

	"sanft/internal/core"
	"sanft/internal/svm"
)

// CostModel charges virtual time for host computation.
type CostModel struct {
	// Flop is the time per floating-point operation (450 MHz PII running
	// real FFT/MD code: ~100 Mflop/s sustained).
	Flop time.Duration
	// Mem is the time per byte moved by host memory copies.
	Mem time.Duration
	// Key is the time per key per radix-sort pass (histogram or scatter).
	Key time.Duration
}

// DefaultCostModel matches the paper's hosts.
func DefaultCostModel() CostModel {
	return CostModel{
		Flop: 10 * time.Nanosecond,
		Mem:  3 * time.Nanosecond,
		Key:  8 * time.Nanosecond,
	}
}

// Result summarizes one application run.
type Result struct {
	Name    string
	Elapsed time.Duration
	// Mean and Max are per-worker breakdown aggregates (Figure 9 plots
	// the equivalent of Max: the visible critical path per bucket).
	Mean svm.Breakdown
	Max  svm.Breakdown
	// Workers is the worker count P.
	Workers int
}

func (r Result) String() string {
	return fmt.Sprintf("%s: elapsed=%v compute=%v data=%v lock=%v barrier=%v (max across %d workers)",
		r.Name, r.Elapsed, r.Max.Compute, r.Max.Data, r.Max.Lock, r.Max.Barrier, r.Workers)
}

// runOn builds an SVM system on the cluster, runs body on P workers, and
// collects the result. bound caps virtual time.
func runOn(c *core.Cluster, name string, heapBytes, procsPerNode, numLocks int, bound time.Duration, body func(w *svm.Worker)) (Result, *svm.Run, error) {
	s := svm.New(c, c.Hosts, svm.Config{
		HeapBytes:    heapBytes,
		ProcsPerNode: procsPerNode,
		NumLocks:     numLocks,
	})
	s.Start()
	run := s.SpawnWorkers(body)
	c.RunFor(bound)
	c.Stop()
	if !run.Done() {
		return Result{}, run, fmt.Errorf("apps: %s did not finish within %v of virtual time", name, bound)
	}
	return Result{
		Name:    name,
		Elapsed: run.Elapsed(),
		Mean:    run.MeanBreakdown(),
		Max:     run.MaxBreakdown(),
		Workers: s.Workers(),
	}, run, nil
}

// split returns worker w's half-open share [lo,hi) of n items over P
// workers.
func split(n, p, w int) (lo, hi int) {
	per := n / p
	rem := n % p
	lo = w*per + mini(w, rem)
	hi = lo + per
	if w < rem {
		hi++
	}
	return lo, hi
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}
