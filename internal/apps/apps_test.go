package apps

import (
	"math"
	"math/cmplx"
	"sort"
	"testing"
	"time"

	"sanft/internal/core"
	"sanft/internal/retrans"
	"sanft/internal/topology"
)

// paperCluster builds the Figure 9 platform: 4 nodes (2-way SMPs) on one
// switch.
func paperCluster(errRate float64, q int, interval time.Duration) *core.Cluster {
	nw, hosts := topology.Star(4)
	return core.New(core.Config{
		Net:       nw,
		Hosts:     hosts,
		FT:        true,
		Retrans:   retrans.Config{QueueSize: q, Interval: interval},
		ErrorRate: errRate,
		Seed:      1,
	})
}

func TestFFTInPlaceMatchesDirectDFT(t *testing.T) {
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)*0.7)*0.5, math.Cos(float64(i)*1.3)*0.5)
	}
	want := dftDirect(x)
	got := append([]complex128(nil), x...)
	fftInPlace(got)
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("fftInPlace differs from direct DFT at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestParallelFFTCorrect(t *testing.T) {
	// 64-point parallel FFT across 8 workers must match the direct DFT
	// of the same deterministic input.
	var out []complex128
	prm := FFTParams{LogN: 6, Iters: 1, Capture: func(v []complex128) { out = v }}
	res, err := RunFFT(paperCluster(0, 32, time.Millisecond), prm)
	if err != nil {
		t.Fatal(err)
	}
	n := 64
	x := make([]complex128, n)
	for j := range x {
		x[j] = complex(math.Sin(float64(j)*0.7)*0.5, math.Cos(float64(j)*1.3)*0.5)
	}
	want := dftDirect(x)
	if out == nil {
		t.Fatal("no captured output")
	}
	for i := range want {
		if cmplx.Abs(out[i]-want[i]) > 1e-6 {
			t.Fatalf("parallel FFT wrong at %d: %v vs %v", i, out[i], want[i])
		}
	}
	if res.Elapsed <= 0 || res.Max.Data == 0 || res.Max.Barrier == 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

func TestParallelFFTCorrectUnderErrors(t *testing.T) {
	// Same computation with 1% injected packet loss: answers must be
	// bit-identical in value (the protocol hides the loss), only slower.
	var clean, dirty []complex128
	if _, err := RunFFT(paperCluster(0, 32, time.Millisecond),
		FFTParams{LogN: 8, Iters: 1, Capture: func(v []complex128) { clean = v }}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunFFT(paperCluster(1e-2, 32, time.Millisecond),
		FFTParams{LogN: 8, Iters: 1, Capture: func(v []complex128) { dirty = v }}); err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if clean[i] != dirty[i] {
			t.Fatalf("error injection changed FFT result at %d", i)
		}
	}
}

func TestRadixSortsCorrectly(t *testing.T) {
	var out []uint32
	prm := RadixParams{Keys: 1 << 12, Iters: 1, Capture: func(v []uint32) { out = v }}
	res, err := RunRadix(paperCluster(0, 32, time.Millisecond), prm)
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("no captured output")
	}
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
		t.Fatal("keys not sorted")
	}
	// Permutation check: multiset must equal the deterministic input.
	want := make([]uint32, len(out))
	for i := range want {
		k := uint32(i)*2654435761 + 0*40503
		k ^= k >> 13
		want[i] = k
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("key multiset differs at %d: %08x vs %08x", i, out[i], want[i])
		}
	}
	if res.Max.Data == 0 {
		t.Fatal("radix should have Data time (scatter traffic)")
	}
}

func TestRadixCorrectUnderErrors(t *testing.T) {
	var out []uint32
	prm := RadixParams{Keys: 1 << 12, Iters: 1, Capture: func(v []uint32) { out = v }}
	if _, err := RunRadix(paperCluster(1e-2, 32, time.Millisecond), prm); err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
		t.Fatal("keys not sorted under error injection")
	}
}

func TestWaterRunsAndConservesMomentum(t *testing.T) {
	var pos []float64
	prm := WaterParams{Molecules: 64, Steps: 3, Capture: func(v []float64) { pos = v }}
	res, err := RunWater(paperCluster(0, 32, time.Millisecond), prm)
	if err != nil {
		t.Fatal(err)
	}
	if pos == nil {
		t.Fatal("no captured positions")
	}
	for i, v := range pos {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("position %d is %v", i, v)
		}
	}
	if res.Max.Lock == 0 {
		t.Fatal("water should accumulate Lock time")
	}
	if res.Max.Compute == 0 {
		t.Fatal("water should accumulate Compute time")
	}
}

func TestWaterComputeFractionGrowsWithN(t *testing.T) {
	// Water is O(n²) compute over O(n) communication (paper: small
	// communication-to-computation ratio at its 4096-molecule size).
	// At unit-test scale, assert the scaling property: the compute share
	// rises steeply with molecule count.
	frac := func(n int) float64 {
		res, err := RunWater(paperCluster(0, 32, time.Millisecond),
			WaterParams{Molecules: n, Steps: 2})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Mean.Compute) / float64(res.Mean.Total())
	}
	small, large := frac(128), frac(512)
	if large <= small*2 {
		t.Fatalf("compute fraction %v (n=512) not ≫ %v (n=128)", large, small)
	}
}

func TestWaterMatchesSerialReference(t *testing.T) {
	// The parallel run must match a serial reference implementation of
	// the same force/integration scheme.
	n, steps := 27, 2
	var got []float64
	if _, err := RunWater(paperCluster(0, 32, time.Millisecond),
		WaterParams{Molecules: n, Steps: steps, Capture: func(v []float64) { got = v }}); err != nil {
		t.Fatal(err)
	}
	want := serialWater(n, steps)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("position %d: %v vs serial %v", i, got[i], want[i])
		}
	}
}

// serialWater is a plain single-threaded reference of the same scheme.
func serialWater(n, steps int) []float64 {
	side := int(math.Ceil(math.Cbrt(float64(n))))
	pos := make([]float64, n*3)
	vel := make([]float64, n*3)
	for m := 0; m < n; m++ {
		pos[m*3] = float64(m%side) * 1.2
		pos[m*3+1] = float64((m/side)%side) * 1.2
		pos[m*3+2] = float64(m/(side*side)) * 1.2
	}
	for s := 0; s < steps; s++ {
		f := make([]float64, n*3)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				fx, fy, fz := ljForce(pos[i*3], pos[i*3+1], pos[i*3+2], pos[j*3], pos[j*3+1], pos[j*3+2])
				f[i*3] += fx
				f[i*3+1] += fy
				f[i*3+2] += fz
				f[j*3] -= fx
				f[j*3+1] -= fy
				f[j*3+2] -= fz
			}
		}
		for i := range f {
			vel[i] += f[i] * waterDT
			pos[i] += vel[i] * waterDT
		}
	}
	return pos
}

func TestAppsDegradeGracefullyAtHighErrorRates(t *testing.T) {
	// Figure 9's headline: below 1e-3 the applications are barely
	// affected; at 1e-3 and above execution time grows.
	clean, err := RunRadix(paperCluster(0, 32, time.Millisecond), RadixParams{Keys: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := RunRadix(paperCluster(1e-2, 32, time.Millisecond), RadixParams{Keys: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Elapsed <= clean.Elapsed {
		t.Fatalf("1e-2 errors should cost something: %v vs %v", noisy.Elapsed, clean.Elapsed)
	}
	if noisy.Elapsed > clean.Elapsed*4 {
		t.Fatalf("1e-2 errors cost too much (%v vs %v); protocol not recovering efficiently",
			noisy.Elapsed, clean.Elapsed)
	}
}

func TestSplitCoversAll(t *testing.T) {
	for _, n := range []int{1, 7, 64, 100} {
		for _, p := range []int{1, 3, 8} {
			total := 0
			prev := 0
			for w := 0; w < p; w++ {
				lo, hi := split(n, p, w)
				if lo != prev {
					t.Fatalf("split(%d,%d,%d) not contiguous", n, p, w)
				}
				total += hi - lo
				prev = hi
			}
			if total != n {
				t.Fatalf("split(%d,%d) covers %d", n, p, total)
			}
		}
	}
}
