package apps

import (
	"fmt"
	"math"
	"math/cmplx"
	"time"

	"sanft/internal/core"
	"sanft/internal/svm"
)

// FFTParams configures the FFT kernel. The paper's problem size is
// 1M points (LogN=20) for 18 iterations; the default here is a scaled
// instance that preserves the communication structure.
type FFTParams struct {
	// LogN is log2 of the point count; must be even (the six-step
	// algorithm uses a √N×√N matrix).
	LogN int
	// Iters repeats the whole FFT, as the paper does to lengthen runs.
	Iters int
	// ProcsPerNode defaults to 2 (the paper's 2-way SMPs).
	ProcsPerNode int
	// Bound caps virtual run time (default 5 minutes).
	Bound time.Duration
	Cost  CostModel
	// Capture, if set, receives the transformed signal (natural order)
	// after the final iteration — read back by worker 0 for validation.
	Capture func([]complex128)
}

func (p FFTParams) defaults() FFTParams {
	if p.LogN == 0 {
		p.LogN = 14
	}
	if p.Iters == 0 {
		p.Iters = 1
	}
	if p.ProcsPerNode == 0 {
		p.ProcsPerNode = 2
	}
	if p.Bound == 0 {
		p.Bound = 5 * time.Minute
	}
	if p.Cost == (CostModel{}) {
		p.Cost = DefaultCostModel()
	}
	return p
}

// PaperFFTParams returns the Table 2 problem size: 1M points, 18
// iterations.
func PaperFFTParams() FFTParams {
	return FFTParams{LogN: 20, Iters: 18}.defaults()
}

// RunFFT executes the six-step parallel FFT on the cluster. The input is
// a deterministic pseudo-random signal; the transformed output is left in
// the B matrix region of shared memory (natural order) after each
// iteration.
func RunFFT(c *core.Cluster, prm FFTParams) (Result, error) {
	prm = prm.defaults()
	if prm.LogN%2 != 0 {
		return Result{}, fmt.Errorf("apps: FFT LogN must be even, got %d", prm.LogN)
	}
	n := 1 << prm.LogN
	side := 1 << (prm.LogN / 2) // n1 = n2 = √N
	baseA := 0
	baseB := n * 16 // complex128 = 16 bytes
	heap := 2 * n * 16

	res, _, err := runOn(c, "FFT", heap, prm.ProcsPerNode, 1, prm.Bound, func(w *svm.Worker) {
		P := prm.ProcsPerNode * len(c.Hosts)
		lo, hi := split(side, P, w.ID)

		// Initialize owned rows of A with a deterministic signal.
		for r := lo; r < hi; r++ {
			row := make([]float64, 2*side)
			for col := 0; col < side; col++ {
				j := r*side + col
				row[2*col] = math.Sin(float64(j)*0.7) * 0.5
				row[2*col+1] = math.Cos(float64(j)*1.3) * 0.5
			}
			w.WriteFloat64s(baseA+r*side*16, row)
		}
		w.Compute(time.Duration(hi-lo) * time.Duration(side) * 4 * prm.Cost.Flop)
		w.Barrier()

		for it := 0; it < prm.Iters; it++ {
			fftSixStep(w, prm, side, baseA, baseB, lo, hi, P)
			// Reinitialization is not needed: iterating on the output
			// keeps the same communication pattern; values stay finite
			// for the paper's iteration counts.
			if it+1 < prm.Iters {
				// Copy result back to A for the next iteration (owned
				// rows of the n2×n1 result matrix).
				for r := lo; r < hi; r++ {
					row := w.ReadFloat64s(baseB+r*side*16, 2*side)
					scale := 1.0 / math.Sqrt(float64(n))
					for i := range row {
						row[i] *= scale // keep magnitudes bounded
					}
					w.WriteFloat64s(baseA+r*side*16, row)
				}
				w.Compute(time.Duration(hi-lo) * time.Duration(side) * 16 * prm.Cost.Mem)
				w.Barrier()
			}
		}
		w.Barrier()
		if prm.Capture != nil && w.ID == 0 {
			raw := w.ReadFloat64s(baseB, 2*n)
			out := make([]complex128, n)
			for i := range out {
				out[i] = complex(raw[2*i], raw[2*i+1])
			}
			prm.Capture(out)
		}
	})
	return res, err
}

// fftSixStep runs one six-step FFT: A (side×side, row-major, holding x
// with j = row*side+col) → result in B, natural order.
func fftSixStep(w *svm.Worker, prm FFTParams, side, baseA, baseB, lo, hi, P int) {
	n := side * side
	cost := prm.Cost

	transpose := func(dst, src int) {
		// Worker owns dst rows [lo,hi): dst[r][c] = src[c][r].
		for r := lo; r < hi; r++ {
			row := make([]float64, 2*side)
			for col := 0; col < side; col++ {
				v := w.ReadFloat64s(src+(col*side+r)*16, 2)
				row[2*col] = v[0]
				row[2*col+1] = v[1]
			}
			w.WriteFloat64s(dst+r*side*16, row)
		}
		w.Compute(time.Duration(hi-lo) * time.Duration(side) * 16 * cost.Mem)
		w.Barrier()
	}

	fftRows := func(base int, twiddle bool) {
		for r := lo; r < hi; r++ {
			raw := w.ReadFloat64s(base+r*side*16, 2*side)
			row := make([]complex128, side)
			for i := range row {
				row[i] = complex(raw[2*i], raw[2*i+1])
			}
			fftInPlace(row)
			if twiddle {
				for k := 0; k < side; k++ {
					ang := -2 * math.Pi * float64(r) * float64(k) / float64(n)
					row[k] *= cmplx.Exp(complex(0, ang))
				}
			}
			for i, v := range row {
				raw[2*i] = real(v)
				raw[2*i+1] = imag(v)
			}
			w.WriteFloat64s(base+r*side*16, raw)
		}
		flops := float64(hi-lo) * 5 * float64(side) * math.Log2(float64(side))
		if twiddle {
			flops += float64(hi-lo) * float64(side) * 8
		}
		w.Compute(time.Duration(flops) * cost.Flop)
		w.Barrier()
	}

	transpose(baseB, baseA) // B[j2][j1] = A[j1][j2]
	fftRows(baseB, true)    // FFT rows of B + twiddle w^(j2*k1)
	transpose(baseA, baseB) // A[k1][j2] = B[j2][k1]
	fftRows(baseA, false)   // FFT rows of A
	transpose(baseB, baseA) // B[k2][k1] = A[k1][k2]: natural order
}

// fftInPlace is an iterative radix-2 Cooley-Tukey FFT.
func fftInPlace(a []complex128) {
	n := len(a)
	// Bit reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			wv := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				v := a[i+j+length/2] * wv
				a[i+j] = u + v
				a[i+j+length/2] = u - v
				wv *= wl
			}
		}
	}
}

// dftDirect is the O(N²) reference used by validation tests.
func dftDirect(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j) * float64(k) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}
