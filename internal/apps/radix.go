package apps

import (
	"time"

	"sanft/internal/core"
	"sanft/internal/svm"
)

// RadixParams configures the RadixLocal kernel. The paper's size is 4M
// keys for 5 iterations.
type RadixParams struct {
	// Keys is the number of 32-bit keys.
	Keys int
	// Iters repeats the full sort (keys are regenerated each time).
	Iters int
	// ProcsPerNode defaults to 2.
	ProcsPerNode int
	Bound        time.Duration
	Cost         CostModel
	// Capture, if set, receives the final sorted keys (worker 0 reads
	// them back after the last iteration).
	Capture func([]uint32)
}

func (p RadixParams) defaults() RadixParams {
	if p.Keys == 0 {
		p.Keys = 1 << 16
	}
	if p.Iters == 0 {
		p.Iters = 1
	}
	if p.ProcsPerNode == 0 {
		p.ProcsPerNode = 2
	}
	if p.Bound == 0 {
		p.Bound = 10 * time.Minute
	}
	if p.Cost == (CostModel{}) {
		p.Cost = DefaultCostModel()
	}
	return p
}

// PaperRadixParams returns the Table 2 size: 4M keys, 5 iterations.
func PaperRadixParams() RadixParams {
	return RadixParams{Keys: 4 << 20, Iters: 5}.defaults()
}

const radixBits = 8
const radixBuckets = 1 << radixBits

// RunRadix executes the parallel LSD radix sort. After each iteration the
// sorted keys sit in the A array (4 passes of radix-256 over 32-bit keys:
// even pass count returns to A).
func RunRadix(c *core.Cluster, prm RadixParams) (Result, error) {
	prm = prm.defaults()
	n := prm.Keys
	baseA := 0
	baseB := n * 4
	baseHist := 2 * n * 4
	P := prm.ProcsPerNode * len(c.Hosts)
	heap := baseHist + P*radixBuckets*4

	res, _, err := runOn(c, "RadixLocal", heap, prm.ProcsPerNode, 1, prm.Bound, func(w *svm.Worker) {
		lo, hi := split(n, P, w.ID)

		for it := 0; it < prm.Iters; it++ {
			// Regenerate owned keys deterministically (xorshift-style).
			buf := make([]byte, (hi-lo)*4)
			for i := lo; i < hi; i++ {
				k := uint32(i)*2654435761 + uint32(it)*40503
				k ^= k >> 13
				putU32(buf[(i-lo)*4:], k)
			}
			w.Write(baseA+lo*4, buf)
			w.Compute(time.Duration(hi-lo) * prm.Cost.Key)
			w.Barrier()

			in, out := baseA, baseB
			for pass := 0; pass < 32/radixBits; pass++ {
				shift := uint(pass * radixBits)

				// Phase 1: local histogram of owned slice.
				var hist [radixBuckets]uint32
				keys := w.View(in+lo*4, (hi-lo)*4)
				for i := 0; i < hi-lo; i++ {
					k := getU32(keys[i*4:])
					hist[(k>>shift)&(radixBuckets-1)]++
				}
				w.Compute(time.Duration(hi-lo) * prm.Cost.Key)

				// Publish the histogram row.
				hb := make([]byte, radixBuckets*4)
				for b, v := range hist {
					putU32(hb[b*4:], v)
				}
				w.Write(baseHist+w.ID*radixBuckets*4, hb)
				w.Barrier()

				// Phase 2: read all histograms, compute this worker's
				// per-bucket starting offsets (stable order: bucket-major,
				// worker-minor).
				all := w.View(baseHist, P*radixBuckets*4)
				offsets := make([]int, radixBuckets)
				pos := 0
				for b := 0; b < radixBuckets; b++ {
					for ww := 0; ww < P; ww++ {
						if ww == w.ID {
							offsets[b] = pos
						}
						pos += int(getU32(all[(ww*radixBuckets+b)*4:]))
					}
				}
				w.Compute(time.Duration(P*radixBuckets) * prm.Cost.Key / 8)

				// Phase 3: scatter owned keys to their global positions —
				// the fine-grained, latency-sensitive phase.
				keys = w.View(in+lo*4, (hi-lo)*4)
				var kb [4]byte
				for i := 0; i < hi-lo; i++ {
					k := getU32(keys[i*4:])
					b := (k >> shift) & (radixBuckets - 1)
					copy(kb[:], keys[i*4:i*4+4])
					w.Write(out+offsets[b]*4, kb[:])
					offsets[b]++
				}
				w.Compute(time.Duration(hi-lo) * prm.Cost.Key)
				w.Barrier()
				in, out = out, in
			}
		}
		w.Barrier()
		if prm.Capture != nil && w.ID == 0 {
			raw := w.View(baseA, n*4)
			keys := make([]uint32, n)
			for i := range keys {
				keys[i] = getU32(raw[i*4:])
			}
			prm.Capture(keys)
		}
	})
	return res, err
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
