package apps

import (
	"math"
	"time"

	"sanft/internal/core"
	"sanft/internal/svm"
)

// WaterParams configures the WaterNSquared kernel. The paper's size is
// 4096 molecules for 15 steps.
type WaterParams struct {
	// Molecules is the molecule count.
	Molecules int
	// Steps is the number of time steps.
	Steps int
	// Locks is the number of force-accumulation lock groups.
	Locks int
	// ProcsPerNode defaults to 2.
	ProcsPerNode int
	Bound        time.Duration
	Cost         CostModel
	// Capture, if set, receives the final positions (worker 0).
	Capture func([]float64)
}

func (p WaterParams) defaults() WaterParams {
	if p.Molecules == 0 {
		p.Molecules = 216
	}
	if p.Steps == 0 {
		p.Steps = 3
	}
	if p.Locks == 0 {
		p.Locks = 16
	}
	if p.ProcsPerNode == 0 {
		p.ProcsPerNode = 2
	}
	if p.Bound == 0 {
		p.Bound = 10 * time.Minute
	}
	if p.Cost == (CostModel{}) {
		p.Cost = DefaultCostModel()
	}
	return p
}

// PaperWaterParams returns the Table 2 size: 4096 molecules, 15 steps.
func PaperWaterParams() WaterParams {
	return WaterParams{Molecules: 4096, Steps: 15}.defaults()
}

// waterDT is the integration step.
const waterDT = 1e-3

// RunWater executes the O(n²) molecular-dynamics kernel: pairwise
// Lennard-Jones-style forces, lock-guarded accumulation into the shared
// force array, barrier-synchronized integration.
func RunWater(c *core.Cluster, prm WaterParams) (Result, error) {
	prm = prm.defaults()
	n := prm.Molecules
	basePos := 0
	baseForce := n * 24 // 3 float64 per molecule
	heap := 2 * n * 24
	P := prm.ProcsPerNode * len(c.Hosts)

	res, _, err := runOn(c, "WaterNSquared", heap, prm.ProcsPerNode, prm.Locks, prm.Bound, func(w *svm.Worker) {
		lo, hi := split(n, P, w.ID)
		// Velocities are private to the owner.
		vel := make([]float64, (hi-lo)*3)

		// Initialize owned molecules on a cubic lattice.
		side := int(math.Ceil(math.Cbrt(float64(n))))
		init := make([]float64, (hi-lo)*3)
		for m := lo; m < hi; m++ {
			i := m - lo
			init[i*3] = float64(m%side) * 1.2
			init[i*3+1] = float64((m/side)%side) * 1.2
			init[i*3+2] = float64(m/(side*side)) * 1.2
		}
		w.WriteFloat64s(basePos+lo*24, init)
		zero := make([]float64, (hi-lo)*3)
		w.WriteFloat64s(baseForce+lo*24, zero)
		w.Barrier()

		for step := 0; step < prm.Steps; step++ {
			// Read the full position array (page fetches: Data time).
			pos := w.ReadFloat64s(basePos, n*3)

			// Compute partial forces for this worker's pair share:
			// molecule rows assigned round-robin for balance.
			pf := make([]float64, n*3)
			pairs := 0
			for i := w.ID; i < n; i += P {
				for j := i + 1; j < n; j++ {
					fx, fy, fz := ljForce(
						pos[i*3], pos[i*3+1], pos[i*3+2],
						pos[j*3], pos[j*3+1], pos[j*3+2])
					pf[i*3] += fx
					pf[i*3+1] += fy
					pf[i*3+2] += fz
					pf[j*3] -= fx
					pf[j*3+1] -= fy
					pf[j*3+2] -= fz
					pairs++
				}
			}
			w.Compute(time.Duration(pairs) * 4 * prm.Cost.Flop)

			// Accumulate into the shared force array under the lock
			// covering each molecule group (the paper's heavy lock
			// synchronization).
			per := (n + prm.Locks - 1) / prm.Locks
			for g := 0; g < prm.Locks; g++ {
				glo, ghi := g*per, mini((g+1)*per, n)
				if glo >= ghi {
					continue
				}
				w.Lock(g)
				cur := w.ReadFloat64s(baseForce+glo*24, (ghi-glo)*3)
				changed := false
				for m := glo; m < ghi; m++ {
					i := (m - glo) * 3
					if pf[m*3] != 0 || pf[m*3+1] != 0 || pf[m*3+2] != 0 {
						cur[i] += pf[m*3]
						cur[i+1] += pf[m*3+1]
						cur[i+2] += pf[m*3+2]
						changed = true
					}
				}
				if changed {
					w.WriteFloat64s(baseForce+glo*24, cur)
				}
				w.Unlock(g)
			}
			w.Compute(time.Duration(n) * 2 * prm.Cost.Flop)
			w.Barrier()

			// Integrate owned molecules and reset their forces.
			f := w.ReadFloat64s(baseForce+lo*24, (hi-lo)*3)
			p2 := w.ReadFloat64s(basePos+lo*24, (hi-lo)*3)
			for i := range f {
				vel[i] += f[i] * waterDT
				p2[i] += vel[i] * waterDT
			}
			w.WriteFloat64s(basePos+lo*24, p2)
			w.WriteFloat64s(baseForce+lo*24, make([]float64, (hi-lo)*3))
			w.Compute(time.Duration(hi-lo) * 6 * prm.Cost.Flop)
			w.Barrier()
		}
		if prm.Capture != nil && w.ID == 0 {
			prm.Capture(w.ReadFloat64s(basePos, n*3))
		}
	})
	return res, err
}

// ljForce computes a truncated Lennard-Jones-style pair force.
func ljForce(x1, y1, z1, x2, y2, z2 float64) (fx, fy, fz float64) {
	dx, dy, dz := x2-x1, y2-y1, z2-z1
	r2 := dx*dx + dy*dy + dz*dz
	const cutoff2 = 6.25 // 2.5²
	if r2 > cutoff2 || r2 == 0 {
		return 0, 0, 0
	}
	inv2 := 1.0 / r2
	inv6 := inv2 * inv2 * inv2
	// f(r)/r so components scale with displacement.
	fr := 24 * inv2 * inv6 * (2*inv6 - 1)
	// Clamp to keep the lattice integration stable at large dt.
	if fr > 1e3 {
		fr = 1e3
	} else if fr < -1e3 {
		fr = -1e3
	}
	return -fr * dx, -fr * dy, -fr * dz
}
