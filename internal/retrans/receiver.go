package retrans

import (
	"sort"

	"sanft/internal/proto"
	"sanft/internal/topology"
)

// srcState is per-source receive state: just an expected sequence number
// and a generation — the receiver buffers nothing (§4.1.1).
type srcState struct {
	gen        uint32
	expected   uint64 // next in-order sequence number
	pendingAck bool   // delivered data not yet covered by an emitted ack
}

// Verdict is the receive-side decision for one data frame.
type Verdict struct {
	// Accept: deliver the frame's payload to the host. False for
	// duplicates, out-of-order frames, and stale generations — all
	// dropped without buffering.
	Accept bool
	// AckNow: emit an explicit cumulative ack immediately (the frame
	// requested one, or it was a duplicate and the sender clearly needs
	// resynchronizing).
	AckNow bool
	// ArmDelayed: start (or keep running) the delayed-ack timer so the
	// ack goes out explicitly if no reverse traffic piggybacks it first.
	ArmDelayed bool
}

// Receiver is the receive side of the protocol for one NIC.
type Receiver struct {
	cfg  Config
	srcs map[topology.NodeID]*srcState

	// Counters.
	Accepted   uint64
	Duplicates uint64
	OutOfOrder uint64
	StaleGen   uint64
}

// NewReceiver returns a Receiver with the given configuration.
func NewReceiver(cfg Config) *Receiver {
	return &Receiver{cfg: cfg.Defaults(), srcs: make(map[topology.NodeID]*srcState)}
}

func (r *Receiver) src(id topology.NodeID) *srcState {
	s := r.srcs[id]
	if s == nil {
		s = &srcState{}
		r.srcs[id] = s
	}
	return s
}

// OnData classifies an arriving data frame from src.
func (r *Receiver) OnData(src topology.NodeID, gen uint32, seq uint64, req proto.AckLevel) Verdict {
	s := r.src(src)
	if gen < s.gen {
		// A packet from a previous generation, still rattling around the
		// network after a remap: drop silently (§4.2).
		r.StaleGen++
		return Verdict{}
	}
	if gen > s.gen {
		// The sender has remapped and restarted numbering.
		s.gen = gen
		s.expected = 0
		s.pendingAck = false
	}
	switch {
	case seq == s.expected:
		s.expected++
		s.pendingAck = true
		r.Accepted++
		return Verdict{
			Accept:     true,
			AckNow:     req == proto.AckImmediate,
			ArmDelayed: req == proto.AckDelayed,
		}
	case seq < s.expected:
		// Duplicate (a retransmission raced the ack): re-ack so the
		// sender frees its buffers and stops resending.
		r.Duplicates++
		s.pendingAck = true
		return Verdict{AckNow: true}
	default:
		// Gap: a preceding packet was lost. Go-back-N receivers drop
		// everything until the expected number arrives; no NACK, no
		// buffering — the sender's timer recovers (§4.1.1).
		r.OutOfOrder++
		return Verdict{}
	}
}

// CumAck returns the current cumulative acknowledgment for src: every
// sequence number ≤ seq of generation gen has been delivered. ok is false
// when nothing has been received from src in the current generation.
func (r *Receiver) CumAck(src topology.NodeID) (gen uint32, seq uint64, ok bool) {
	s := r.srcs[src]
	if s == nil || s.expected == 0 {
		return 0, 0, false
	}
	return s.gen, s.expected - 1, true
}

// PendingAck reports whether delivered-but-unacknowledged data exists for
// src (i.e. an ack, piggybacked or explicit, would tell the sender
// something new).
func (r *Receiver) PendingAck(src topology.NodeID) bool {
	s := r.srcs[src]
	return s != nil && s.pendingAck
}

// AckEmitted records that a cumulative ack for src has just been sent
// (piggybacked or explicit); clears the pending flag.
func (r *Receiver) AckEmitted(src topology.NodeID) {
	if s := r.srcs[src]; s != nil {
		s.pendingAck = false
	}
}

// PendingSources returns sources with un-acknowledged delivered data, in
// ascending order — used by the NIC when flushing delayed acks.
func (r *Receiver) PendingSources() []topology.NodeID {
	var out []topology.NodeID
	for id, s := range r.srcs {
		if s.pendingAck {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Expected returns the next expected sequence number from src (0 if the
// source is unknown).
func (r *Receiver) Expected(src topology.NodeID) uint64 {
	if s := r.srcs[src]; s != nil {
		return s.expected
	}
	return 0
}
