package retrans

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sanft/internal/proto"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

const dst = topology.NodeID(7)
const src = topology.NodeID(3)

func at(us int64) sim.Time { return sim.Time(us * 1000) }

func TestPrepareAssignsSequentialSeqs(t *testing.T) {
	s := NewSender(Config{QueueSize: 8})
	for i := 0; i < 5; i++ {
		e := s.Prepare(dst, at(0), 8, nil, 100)
		if e.Seq != uint64(i) || e.Gen != 0 {
			t.Fatalf("entry %d: seq=%d gen=%d", i, e.Seq, e.Gen)
		}
	}
	if s.Unacked(dst) != 5 {
		t.Fatalf("unacked = %d, want 5", s.Unacked(dst))
	}
	// Independent destination gets its own numbering.
	e := s.Prepare(dst+1, at(0), 8, nil, 100)
	if e.Seq != 0 {
		t.Fatalf("other-dest seq = %d, want 0", e.Seq)
	}
}

func TestCumulativeAckFreesPrefix(t *testing.T) {
	s := NewSender(Config{QueueSize: 8})
	var es []*Entry
	for i := 0; i < 6; i++ {
		e := s.Prepare(dst, at(0), 8, i, 100)
		s.OnTransmitted(e, at(int64(i)))
		es = append(es, e)
	}
	freed := s.OnAck(dst, 0, 3, at(10))
	if len(freed) != 4 {
		t.Fatalf("freed %d, want 4 (seqs 0-3)", len(freed))
	}
	for i, e := range freed {
		if e != es[i] {
			t.Fatal("freed wrong entries")
		}
	}
	if s.Unacked(dst) != 2 {
		t.Fatalf("unacked = %d, want 2", s.Unacked(dst))
	}
	// Re-ack of an old seq frees nothing.
	if freed := s.OnAck(dst, 0, 2, at(11)); len(freed) != 0 {
		t.Fatalf("stale ack freed %d entries", len(freed))
	}
	// Wrong generation frees nothing.
	if freed := s.OnAck(dst, 5, 5, at(12)); len(freed) != 0 {
		t.Fatal("wrong-generation ack freed entries")
	}
}

func TestTickGoBackN(t *testing.T) {
	s := NewSender(Config{QueueSize: 8, Interval: time.Millisecond})
	var es []*Entry
	for i := 0; i < 4; i++ {
		e := s.Prepare(dst, at(0), 8, i, 100)
		s.OnTransmitted(e, at(0))
		es = append(es, e)
	}
	// Fifth entry prepared but never transmitted (still in TX queue).
	s.Prepare(dst, at(0), 8, 4, 100)

	// Before the interval: nothing.
	if b := s.Tick(at(500)); len(b) != 0 {
		t.Fatalf("premature retransmission: %v", b)
	}
	// After the interval: all four transmitted entries, in order; the
	// unsent fifth is excluded.
	batches := s.Tick(at(1001))
	if len(batches) != 1 {
		t.Fatalf("batches = %d, want 1", len(batches))
	}
	b := batches[0]
	if b.Dst != dst || len(b.Entries) != 4 {
		t.Fatalf("batch = %+v, want 4 entries to dst", b)
	}
	for i, e := range b.Entries {
		if e != es[i] {
			t.Fatal("batch out of order")
		}
		if e.Retransmits != 1 {
			t.Fatalf("entry %d retransmits = %d", i, e.Retransmits)
		}
	}
	// Immediately after, LastSent is refreshed: no second batch.
	if b := s.Tick(at(1002)); len(b) != 0 {
		t.Fatal("double retransmission within one interval")
	}
	// And again after another interval, still unacked.
	if b := s.Tick(at(2500)); len(b) != 1 {
		t.Fatal("no retransmission after second interval")
	}
}

func TestTickSkipsQueuesWithUntransmittedHead(t *testing.T) {
	s := NewSender(Config{QueueSize: 8, Interval: time.Millisecond})
	s.Prepare(dst, at(0), 8, 0, 100) // never transmitted
	if b := s.Tick(at(5000)); len(b) != 0 {
		t.Fatal("retransmitted a never-transmitted packet")
	}
}

func TestAckRequestFeedbackLevels(t *testing.T) {
	s := NewSender(Config{QueueSize: 32, AckEveryDiv: 4})
	e := s.Prepare(dst, at(0), 32, nil, 100)
	// Plenty free (32 of 32): every K=8th packet requests delayed.
	for i := 0; i < 7; i++ {
		if lvl := s.AckRequestFor(e, 32); lvl != proto.AckNone {
			t.Fatalf("packet %d: level = %v, want none", i, lvl)
		}
	}
	if lvl := s.AckRequestFor(e, 32); lvl != proto.AckDelayed {
		t.Fatalf("8th packet: level = %v, want delayed", lvl)
	}
	// Moderate pressure (≤ 3/4 free): delayed every packet.
	if lvl := s.AckRequestFor(e, 24); lvl != proto.AckDelayed {
		t.Fatalf("moderate pressure: %v, want delayed", lvl)
	}
	// Nearly exhausted (≤ 1/4 free): immediate.
	if lvl := s.AckRequestFor(e, 8); lvl != proto.AckImmediate {
		t.Fatalf("low buffers: %v, want immediate", lvl)
	}
}

func TestReceiverInOrderAcceptance(t *testing.T) {
	r := NewReceiver(Config{})
	for i := 0; i < 5; i++ {
		v := r.OnData(src, 0, uint64(i), proto.AckNone)
		if !v.Accept {
			t.Fatalf("in-order seq %d rejected", i)
		}
	}
	gen, seq, ok := r.CumAck(src)
	if !ok || gen != 0 || seq != 4 {
		t.Fatalf("cum ack = (%d,%d,%v), want (0,4,true)", gen, seq, ok)
	}
}

func TestReceiverDropsOutOfOrderSilently(t *testing.T) {
	r := NewReceiver(Config{})
	r.OnData(src, 0, 0, proto.AckNone)
	// seq 1 lost; 2 and 3 arrive.
	for _, s := range []uint64{2, 3} {
		v := r.OnData(src, 0, s, proto.AckImmediate)
		if v.Accept || v.AckNow {
			t.Fatalf("out-of-order seq %d: verdict %+v, want silent drop", s, v)
		}
	}
	if r.OutOfOrder != 2 {
		t.Fatalf("OutOfOrder = %d, want 2", r.OutOfOrder)
	}
	// Retransmission arrives in order: 1,2,3 all accepted.
	for _, s := range []uint64{1, 2, 3} {
		if v := r.OnData(src, 0, s, proto.AckNone); !v.Accept {
			t.Fatalf("recovered seq %d rejected", s)
		}
	}
}

func TestReceiverDuplicateTriggersReack(t *testing.T) {
	r := NewReceiver(Config{})
	r.OnData(src, 0, 0, proto.AckNone)
	r.OnData(src, 0, 1, proto.AckNone)
	v := r.OnData(src, 0, 0, proto.AckNone)
	if v.Accept {
		t.Fatal("duplicate accepted")
	}
	if !v.AckNow {
		t.Fatal("duplicate should trigger immediate re-ack")
	}
	if r.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", r.Duplicates)
	}
}

func TestReceiverAckRequestVerdicts(t *testing.T) {
	r := NewReceiver(Config{})
	if v := r.OnData(src, 0, 0, proto.AckImmediate); !v.AckNow || v.ArmDelayed {
		t.Fatalf("immediate request: %+v", v)
	}
	if v := r.OnData(src, 0, 1, proto.AckDelayed); v.AckNow || !v.ArmDelayed {
		t.Fatalf("delayed request: %+v", v)
	}
	if v := r.OnData(src, 0, 2, proto.AckNone); v.AckNow || v.ArmDelayed {
		t.Fatalf("no request: %+v", v)
	}
}

func TestPendingAckLifecycle(t *testing.T) {
	r := NewReceiver(Config{})
	if r.PendingAck(src) {
		t.Fatal("pending before any data")
	}
	r.OnData(src, 0, 0, proto.AckNone)
	if !r.PendingAck(src) {
		t.Fatal("not pending after delivery")
	}
	if srcs := r.PendingSources(); len(srcs) != 1 || srcs[0] != src {
		t.Fatalf("pending sources = %v", srcs)
	}
	r.AckEmitted(src)
	if r.PendingAck(src) {
		t.Fatal("still pending after ack emitted")
	}
}

func TestGenerationReset(t *testing.T) {
	s := NewSender(Config{QueueSize: 8})
	for i := 0; i < 3; i++ {
		e := s.Prepare(dst, at(0), 8, i, 100)
		s.OnTransmitted(e, at(0))
	}
	// Ack the first; two remain.
	s.OnAck(dst, 0, 0, at(1))
	entries := s.ResetGeneration(dst, at(2))
	if len(entries) != 2 {
		t.Fatalf("reset returned %d entries, want 2", len(entries))
	}
	for i, e := range entries {
		if e.Gen != 1 || e.Seq != uint64(i) || e.Sent {
			t.Fatalf("entry %d after reset: gen=%d seq=%d sent=%v", i, e.Gen, e.Seq, e.Sent)
		}
	}
	if g := s.Generation(dst); g != 1 {
		t.Fatalf("generation = %d, want 1", g)
	}
	// Next new packet continues the new numbering.
	e := s.Prepare(dst, at(3), 8, 9, 100)
	if e.Gen != 1 || e.Seq != 2 {
		t.Fatalf("post-reset prepare: gen=%d seq=%d, want gen=1 seq=2", e.Gen, e.Seq)
	}
	// Old-generation acks now free nothing.
	if freed := s.OnAck(dst, 0, 5, at(4)); len(freed) != 0 {
		t.Fatal("old-generation ack freed entries after reset")
	}
}

func TestReceiverGenerationHandling(t *testing.T) {
	r := NewReceiver(Config{})
	r.OnData(src, 0, 0, proto.AckNone)
	r.OnData(src, 0, 1, proto.AckNone)
	// New generation restarts numbering at 0.
	if v := r.OnData(src, 1, 0, proto.AckNone); !v.Accept {
		t.Fatal("first packet of new generation rejected")
	}
	gen, seq, ok := r.CumAck(src)
	if !ok || gen != 1 || seq != 0 {
		t.Fatalf("cum ack = (%d,%d,%v), want (1,0,true)", gen, seq, ok)
	}
	// Stragglers from generation 0 are dropped.
	if v := r.OnData(src, 0, 2, proto.AckNone); v.Accept || v.AckNow {
		t.Fatal("stale-generation packet not dropped silently")
	}
	if r.StaleGen != 1 {
		t.Fatalf("StaleGen = %d, want 1", r.StaleGen)
	}
}

func TestStalePathDetection(t *testing.T) {
	s := NewSender(Config{QueueSize: 8, PermFailThreshold: 100 * time.Millisecond})
	e := s.Prepare(dst, at(0), 8, nil, 100)
	s.OnTransmitted(e, at(0))
	if paths := s.StalePaths(at(50_000)); len(paths) != 0 {
		t.Fatal("path stale too early")
	}
	if paths := s.StalePaths(at(100_000)); len(paths) != 1 || paths[0] != dst {
		t.Fatalf("stale paths = %v, want [dst]", paths)
	}
	// Progress resets the clock.
	s.OnAck(dst, 0, 0, at(100_000))
	if paths := s.StalePaths(at(150_000)); len(paths) != 0 {
		t.Fatal("path stale after full ack")
	}
}

// An idle gap is not a failure: the progress clock restarts when the
// first packet after a drained queue is prepared, so a destination that
// was silent longer than PermFailThreshold (a closed-loop think pause,
// say) is not declared stale moments after traffic resumes.
func TestStalePathIdleGapNotStale(t *testing.T) {
	s := NewSender(Config{QueueSize: 8, PermFailThreshold: 100 * time.Millisecond})
	e := s.Prepare(dst, at(0), 8, nil, 100)
	s.OnTransmitted(e, at(0))
	s.OnAck(dst, 0, 0, at(10_000)) // queue drains at t=10ms
	// Traffic resumes after a 490ms idle gap — far past the threshold.
	e2 := s.Prepare(dst, at(500_000), 8, nil, 100)
	s.OnTransmitted(e2, at(500_000))
	if paths := s.StalePaths(at(500_001)); len(paths) != 0 {
		t.Fatalf("healthy path stale after idle gap: %v", paths)
	}
	// The new packet ages on its own clock from the resume point.
	if paths := s.StalePaths(at(600_000)); len(paths) != 1 || paths[0] != dst {
		t.Fatalf("stale paths = %v, want [dst]", paths)
	}
}

func TestStalePathDetectionDisabled(t *testing.T) {
	s := NewSender(Config{QueueSize: 8}) // threshold 0 = disabled
	e := s.Prepare(dst, at(0), 8, nil, 100)
	s.OnTransmitted(e, at(0))
	if paths := s.StalePaths(at(10_000_000)); paths != nil {
		t.Fatal("detection should be disabled")
	}
}

func TestMarkUnreachable(t *testing.T) {
	s := NewSender(Config{QueueSize: 8})
	for i := 0; i < 3; i++ {
		e := s.Prepare(dst, at(0), 8, i, 100)
		s.OnTransmitted(e, at(0))
	}
	dropped := s.MarkUnreachable(dst)
	if len(dropped) != 3 {
		t.Fatalf("dropped %d, want 3", len(dropped))
	}
	if !s.Unreachable(dst) || s.Unacked(dst) != 0 {
		t.Fatal("state not cleared")
	}
	// Unreachable destinations are skipped by the timer.
	if b := s.Tick(at(10_000)); len(b) != 0 {
		t.Fatal("tick retransmitted to unreachable destination")
	}
	// Sending again clears the flag.
	s.Prepare(dst, at(1), 8, 9, 100)
	if s.Unreachable(dst) {
		t.Fatal("prepare should clear unreachable")
	}
}

// lossyChannel property test: under arbitrary data and ack loss, the
// protocol delivers every message exactly once, in order.
func runLossyChannel(t *testing.T, seed int64, n int, dataLoss, ackLoss float64, q int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := Config{QueueSize: q, Interval: 100 * time.Microsecond}
	s := NewSender(cfg)
	r := NewReceiver(cfg)

	var delivered []int
	now := sim.Time(0)
	step := sim.Time(10_000) // 10µs per round

	nextMsg := 0
	type wirePkt struct {
		e     *Entry
		msg   int
		level proto.AckLevel
	}
	var wire []wirePkt // data frames "in flight" this round

	transmit := func(e *Entry, msg int) {
		lvl := s.AckRequestFor(e, cfg.QueueSize-s.TotalUnacked())
		s.OnTransmitted(e, now)
		if rng.Float64() >= dataLoss {
			wire = append(wire, wirePkt{e, msg, lvl})
		}
	}

	deliverAck := func() {
		if gen, seq, ok := r.CumAck(dst0); ok {
			if rng.Float64() >= ackLoss {
				s.OnAck(dst0, gen, seq, now)
			}
			r.AckEmitted(dst0)
		}
	}

	for round := 0; round < 200_000; round++ {
		now = now.Add(time.Duration(step))
		// Send new messages while buffers are available.
		for nextMsg < n && s.TotalUnacked() < q {
			e := s.Prepare(dst0, now, q-s.TotalUnacked(), nextMsg, 64)
			transmit(e, nextMsg)
			nextMsg++
		}
		// Timer-driven retransmission.
		for _, b := range s.Tick(now) {
			for _, e := range b.Entries {
				if rng.Float64() >= dataLoss {
					wire = append(wire, wirePkt{e, e.Payload.(int), proto.AckImmediate})
				}
			}
		}
		// Deliver in-flight frames.
		ackWanted := false
		for _, p := range wire {
			v := r.OnData(dst0, p.e.Gen, p.e.Seq, p.level)
			if v.Accept {
				delivered = append(delivered, p.msg)
			}
			if v.AckNow || v.ArmDelayed {
				ackWanted = true
			}
		}
		wire = wire[:0]
		if ackWanted || round%10 == 9 { // delayed-ack flush
			deliverAck()
		}
		if len(delivered) == n && s.TotalUnacked() == 0 {
			break
		}
	}
	if len(delivered) != n {
		t.Fatalf("seed %d: delivered %d of %d messages", seed, len(delivered), n)
	}
	for i, m := range delivered {
		if m != i {
			t.Fatalf("seed %d: delivery out of order at %d: got %d", seed, i, m)
		}
	}
	if s.TotalUnacked() != 0 {
		t.Fatalf("seed %d: %d buffers leaked", seed, s.TotalUnacked())
	}
}

const dst0 = topology.NodeID(1)

func TestLossyChannelModerateLoss(t *testing.T) {
	runLossyChannel(t, 1, 500, 0.05, 0.05, 32)
}

func TestLossyChannelHeavyLoss(t *testing.T) {
	runLossyChannel(t, 2, 200, 0.3, 0.3, 8)
}

func TestLossyChannelTinyQueue(t *testing.T) {
	runLossyChannel(t, 3, 200, 0.1, 0.1, 2)
}

func TestLossyChannelNoLoss(t *testing.T) {
	runLossyChannel(t, 4, 1000, 0, 0, 128)
}

func TestPropertyLossyChannel(t *testing.T) {
	f := func(seed int64, qx uint8) bool {
		q := []int{2, 4, 8, 32}[qx%4]
		runLossyChannel(t, seed, 100, 0.15, 0.15, q)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTickSkipsInFlightEntries(t *testing.T) {
	s := NewSender(Config{QueueSize: 8, Interval: time.Millisecond})
	e := s.Prepare(dst, at(0), 8, nil, 100)
	s.OnTransmitted(e, at(0))
	e.InFlight = 1 // a copy is queued at the NIC / on the wire
	if b := s.Tick(at(5000)); len(b) != 0 {
		t.Fatal("retransmitted an in-flight entry")
	}
	e.InFlight = 0
	if b := s.Tick(at(6000)); len(b) != 1 {
		t.Fatal("no retransmission after the copy drained")
	}
	// A batch stops at the first in-flight entry to preserve order.
	e2 := s.Prepare(dst, at(0), 8, nil, 100)
	s.OnTransmitted(e2, at(0))
	e2.InFlight = 1
	b := s.Tick(at(9_000_000))
	if len(b) != 1 || len(b[0].Entries) != 1 || b[0].Entries[0] != e {
		t.Fatalf("batch should contain only the drained head, got %+v", b)
	}
}

func TestFixedAckPolicyStarvationEscape(t *testing.T) {
	s := NewSender(Config{QueueSize: 8, FixedAckEvery: 32})
	e := s.Prepare(dst, at(0), 8, nil, 100)
	// Plenty of buffers: only every 32nd packet requests an ack.
	for i := 0; i < 31; i++ {
		if lvl := s.AckRequestFor(e, 4); lvl != proto.AckNone {
			t.Fatalf("packet %d: %v, want none", i, lvl)
		}
	}
	if lvl := s.AckRequestFor(e, 4); lvl != proto.AckDelayed {
		t.Fatalf("32nd packet: %v, want delayed", lvl)
	}
	// Out of buffers: must escape to immediate regardless of the period.
	if lvl := s.AckRequestFor(e, 0); lvl != proto.AckImmediate {
		t.Fatalf("starved: %v, want immediate", lvl)
	}
}
