package retrans

import (
	"testing"
	"time"

	"sanft/internal/sim"
	"sanft/internal/topology"
)

func adCfg() Config {
	return Config{
		QueueSize: 8,
		Interval:  time.Millisecond,
		Adaptive:  true,
		RTOMin:    200 * time.Microsecond,
		RTOMax:    8 * time.Millisecond,
	}
}

func tAt(us int64) sim.Time { return sim.Time(0).Add(time.Duration(us) * time.Microsecond) }

// sendOne prepares and "transmits" one packet to dst at the given time.
func sendOne(s *Sender, dst int, at sim.Time) *Entry {
	e := s.Prepare(topoID(dst), at, s.Config().QueueSize, nil, 64)
	s.OnTransmitted(e, at)
	return e
}

func topoID(d int) topology.NodeID { return topology.NodeID(d) }

// TestAdaptiveRTOFromSamples: RTT samples move the timeout off the fixed
// interval, per Jacobson's estimator, clamped below by RTOMin.
func TestAdaptiveRTOFromSamples(t *testing.T) {
	s := NewSender(adCfg())
	dst := topoID(1)
	sendOne(s, 1, tAt(0))

	// No samples yet: fixed interval in force.
	if got := s.TimeoutFor(dst); got != time.Millisecond {
		t.Fatalf("pre-sample timeout = %v, want 1ms", got)
	}
	// First sample seeds SRTT = rtt, RTTVAR = rtt/2 → RTO = 3·rtt,
	// floored at RTOMin.
	s.ObserveRTT(dst, 20*time.Microsecond)
	if got := s.TimeoutFor(dst); got != 200*time.Microsecond {
		t.Fatalf("timeout after 20µs sample = %v, want RTOMin 200µs", got)
	}
	// A large steady RTT dominates the floor: SRTT converges toward 1ms.
	for i := 0; i < 64; i++ {
		s.ObserveRTT(dst, time.Millisecond)
	}
	got := s.TimeoutFor(dst)
	if got < time.Millisecond || got > 2*time.Millisecond {
		t.Fatalf("converged timeout = %v, want ~1ms–2ms", got)
	}
}

// TestKarnAmbiguousAckIgnored: an ack that frees a retransmitted entry
// must not produce an RTT sample (the measured span would be ambiguous).
func TestKarnAmbiguousAckIgnored(t *testing.T) {
	s := NewSender(adCfg())
	dst := topoID(1)
	e := sendOne(s, 1, tAt(0))
	e.Retransmits = 1 // pretend the timer resent it
	s.OnAck(dst, e.Gen, e.Seq, tAt(5000))
	if s.TimeoutFor(dst) != time.Millisecond {
		t.Fatalf("ambiguous ack moved the timeout: %v", s.TimeoutFor(dst))
	}
	// A clean entry does sample.
	e2 := sendOne(s, 1, tAt(6000))
	s.OnAck(dst, e2.Gen, e2.Seq, tAt(6050))
	if s.TimeoutFor(dst) == time.Millisecond {
		t.Fatal("unambiguous ack produced no sample")
	}
}

// TestKarnBackoff: each unanswered burst doubles the timeout (capped at
// RTOMax); a fresh sample or a generation reset clears the backoff.
func TestKarnBackoff(t *testing.T) {
	s := NewSender(adCfg())
	dst := topoID(1)
	sendOne(s, 1, tAt(0))
	s.ObserveRTT(dst, 100*time.Microsecond) // RTO = 300µs → clamped 300µs? (100+4·50)
	base := s.TimeoutFor(dst)
	if base != 300*time.Microsecond {
		t.Fatalf("base RTO = %v, want 300µs", base)
	}
	// Fire the timer three times without progress; each burst doubles.
	now := tAt(0)
	for i, want := range []time.Duration{base * 2, base * 4, base * 8} {
		now = now.Add(s.TimeoutFor(dst) + time.Microsecond)
		bs := s.Tick(now)
		if len(bs) != 1 {
			t.Fatalf("burst %d: %d batches", i, len(bs))
		}
		if got := s.TimeoutFor(dst); got != want {
			t.Fatalf("after burst %d: timeout %v, want %v", i, got, want)
		}
	}
	// Cap at RTOMax.
	for i := 0; i < 6; i++ {
		now = now.Add(s.TimeoutFor(dst) + time.Microsecond)
		s.Tick(now)
	}
	if got := s.TimeoutFor(dst); got != 8*time.Millisecond {
		t.Fatalf("capped timeout = %v, want RTOMax 8ms", got)
	}
	// A fresh sample resets the backoff.
	s.ObserveRTT(dst, 100*time.Microsecond)
	if got := s.TimeoutFor(dst); got >= 2*base {
		t.Fatalf("sample did not clear backoff: %v", got)
	}
}

// TestFixedModeUnchanged: without Adaptive, ObserveRTT is inert and the
// timeout stays the fixed interval — the paper's baseline, bit for bit.
func TestFixedModeUnchanged(t *testing.T) {
	s := NewSender(Config{QueueSize: 8, Interval: time.Millisecond})
	dst := topoID(1)
	sendOne(s, 1, tAt(0))
	s.ObserveRTT(dst, 10*time.Microsecond)
	if got := s.TimeoutFor(dst); got != time.Millisecond {
		t.Fatalf("fixed-mode timeout = %v, want 1ms", got)
	}
	bs := s.Tick(tAt(1500))
	if len(bs) != 1 || bs[0].Timeout != time.Millisecond {
		t.Fatalf("fixed-mode batch: %+v", bs)
	}
}

// TestDetectionBlindSpot pins the satellite fix: a packet that becomes
// eligible just AFTER a scan waits almost a full period before the next
// scan even sees it. Batch.Waited must expose that scan-quantization lag
// and Oldest must be Timeout + Waited — the honest detection latency.
func TestDetectionBlindSpot(t *testing.T) {
	s := NewSender(Config{QueueSize: 8, Interval: time.Millisecond})

	// Transmitted at t=0; eligible at t=1ms. A scan at t=990µs misses it.
	sendOne(s, 1, tAt(0))
	if bs := s.Tick(tAt(990)); len(bs) != 0 {
		t.Fatalf("premature batch: %+v", bs)
	}
	// The next scan lands at t=1990µs: the packet sat eligible for 990µs.
	bs := s.Tick(tAt(1990))
	if len(bs) != 1 {
		t.Fatalf("got %d batches, want 1", len(bs))
	}
	b := bs[0]
	if b.Oldest != 1990*time.Microsecond {
		t.Fatalf("Oldest = %v, want 1.99ms", b.Oldest)
	}
	if b.Timeout != time.Millisecond {
		t.Fatalf("Timeout = %v, want 1ms", b.Timeout)
	}
	if b.Waited != 990*time.Microsecond {
		t.Fatalf("Waited = %v, want 990µs (the blind spot)", b.Waited)
	}
	if b.Oldest != b.Timeout+b.Waited {
		t.Fatal("Oldest must decompose as Timeout + Waited")
	}
}

// TestNextDeadline: the earliest eligible head defines the deadline the
// adaptive NIC timer sleeps until; in-flight and unsent heads don't.
func TestNextDeadline(t *testing.T) {
	s := NewSender(adCfg())
	if _, ok := s.NextDeadline(); ok {
		t.Fatal("deadline with no traffic")
	}
	e1 := sendOne(s, 1, tAt(0))
	sendOne(s, 2, tAt(100))
	s.ObserveRTT(topoID(2), 100*time.Microsecond) // dst2 RTO = 300µs

	dl, ok := s.NextDeadline()
	if !ok {
		t.Fatal("no deadline")
	}
	// dst1: 0 + 1ms (no samples); dst2: 100µs + 300µs = 400µs → min.
	if dl != tAt(400) {
		t.Fatalf("deadline = %v, want t=400µs", dl)
	}
	// An in-flight head is the NIC's business, not the timer's.
	e1.InFlight = 1
	s2 := s.dests[topoID(2)]
	s2.queue[0].InFlight = 1
	if _, ok := s.NextDeadline(); ok {
		t.Fatal("deadline while all heads in flight")
	}
}
