package retrans

import (
	"testing"
	"time"

	"sanft/internal/sim"
	"sanft/internal/topology"
)

// BenchmarkSenderPath measures the prepare→transmit→ack cycle: the
// firmware-equivalent per-packet protocol cost.
func BenchmarkSenderPath(b *testing.B) {
	s := NewSender(Config{QueueSize: 32})
	r := NewReceiver(Config{})
	dst := topology.NodeID(1)
	now := sim.Time(0)
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Microsecond)
		e := s.Prepare(dst, now, 32-s.Unacked(dst), nil, 4096)
		s.AckRequestFor(e, 32-s.Unacked(dst))
		s.OnTransmitted(e, now)
		v := r.OnData(dst, e.Gen, e.Seq, 0)
		if !v.Accept {
			b.Fatal("rejected")
		}
		gen, seq, _ := r.CumAck(dst)
		r.AckEmitted(dst)
		s.OnAck(dst, gen, seq, now)
	}
}

// BenchmarkTickIdle measures the periodic timer scan with nothing to do —
// the common-case overhead the paper's single-timer design minimizes.
func BenchmarkTickIdle(b *testing.B) {
	s := NewSender(Config{QueueSize: 32, Interval: time.Millisecond})
	now := sim.Time(0)
	for d := 0; d < 16; d++ {
		e := s.Prepare(topology.NodeID(d), now, 32, nil, 64)
		s.OnTransmitted(e, now)
		s.OnAck(topology.NodeID(d), 0, 0, now) // all acked: queues empty
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batches := s.Tick(now.Add(time.Duration(i) * time.Microsecond)); len(batches) != 0 {
			b.Fatal("unexpected retransmission")
		}
	}
}

// BenchmarkGoBackN measures a full retransmission burst of a 32-deep
// queue.
func BenchmarkGoBackN(b *testing.B) {
	dst := topology.NodeID(1)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := NewSender(Config{QueueSize: 32, Interval: time.Millisecond})
		for j := 0; j < 32; j++ {
			e := s.Prepare(dst, 0, 32-j, nil, 4096)
			s.OnTransmitted(e, 0)
		}
		b.StartTimer()
		batches := s.Tick(sim.Time(10 * time.Millisecond))
		if len(batches) != 1 || len(batches[0].Entries) != 32 {
			b.Fatal("bad batch")
		}
	}
}
