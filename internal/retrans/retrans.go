// Package retrans implements the paper's firmware-level retransmission
// protocol (§4.1): the primary contribution for tolerating transient
// network failures.
//
// Protocol summary, as specified by the paper:
//
//   - Every data packet carries a sequence number, assigned per DESTINATION
//     NODE (not per connection) — one retransmission queue per remote node
//     keeps firmware memory proportional to cluster size.
//   - After transmission a packet's buffer is not freed; it moves to the
//     node's retransmission queue (zero copies — the send buffer IS the
//     retransmission buffer).
//   - Acknowledgments are cumulative: one ack frees every packet up to and
//     including its sequence number. There are no NACKs and no receiver
//     buffering: a receiver that misses sequence number n drops every
//     subsequent packet from that node until n arrives.
//   - One periodic timer per NIC (not per packet, unlike AM-II) scans the
//     retransmission queues; a queue whose oldest transmitted packet has
//     not been acknowledged within the interval is retransmitted in full,
//     in order (go-back-N).
//   - Optimizations (§4.1.2): acks piggyback on reverse data traffic;
//     a single ack covers a run of packets; and sender-based feedback sets
//     a per-packet ack-request level based on free send-buffer space, so
//     ack frequency adapts to resource pressure.
//   - Generations (§4.2): when a path is remapped after a permanent
//     failure, the sender bumps the generation number and renumbers its
//     queued packets from zero; receivers drop frames from older
//     generations, which cleanly separates packet lifetimes across
//     remappings.
//
// The package is pure protocol state: it takes the current time as an
// argument and returns decisions; the NIC model (internal/nic) binds it to
// simulated hardware. This keeps every protocol rule unit-testable without
// a network.
package retrans

import (
	"fmt"
	"sort"
	"time"

	"sanft/internal/proto"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

// Config holds the protocol parameters studied in the paper (Table 1).
type Config struct {
	// QueueSize is the number of NIC send buffers (q): the maximum
	// packets in flight (unacknowledged) across all destinations.
	QueueSize int
	// Interval is the retransmission timer period (T).
	Interval time.Duration
	// AckEveryDiv sets the "plenty of buffers" ack-request period:
	// a delayed ack is requested every max(1, QueueSize/AckEveryDiv)
	// packets when more than 3/4 of the buffers are free. Default 4.
	AckEveryDiv int
	// DelayedAck is how long a receiver holds a requested ack hoping to
	// piggyback it on reverse data before sending it explicitly.
	// Default 30µs.
	DelayedAck time.Duration
	// NoPiggyback disables piggybacked acknowledgments (ablation: every
	// ack is an explicit frame).
	NoPiggyback bool
	// FixedAckEvery, when positive, replaces sender-based feedback with
	// a fixed policy: request a delayed ack every N-th packet regardless
	// of buffer pressure (ablation for the Figure 8 discussion).
	FixedAckEvery int
	// ReliableReception upgrades acknowledgment semantics from the VI
	// specification's "reliable delivery" (ack once the receiving NIC
	// has accepted the packet — this system's default, like the paper's)
	// to "reliable reception": acknowledge only after the data has been
	// deposited into host memory. Extension experiment; see
	// RunReliabilityLevels.
	ReliableReception bool
	// PermFailThreshold distinguishes transient from permanent failures:
	// a destination with queued packets and no acknowledgment progress
	// for this long is reported by StalePaths. Zero disables detection
	// (every failure is treated as transient). Default in the full
	// system: 250ms.
	PermFailThreshold time.Duration

	// Adaptive replaces the fixed per-destination timeout (Interval) with
	// a Jacobson/Karn SRTT/RTTVAR retransmission timeout: RTT samples
	// (from unambiguous acks and from liveness control traffic via
	// ObserveRTT) drive RTO = SRTT + 4·RTTVAR, clamped to
	// [RTOMin, RTOMax], with exponential backoff per unanswered
	// retransmission (Karn's algorithm). Interval remains the timer-scan
	// ceiling and the timeout for destinations with no samples yet, so
	// the paper's fixed-timer behavior is the Adaptive=false default.
	Adaptive bool
	// RTOMin floors the adaptive timeout (default 200µs).
	RTOMin time.Duration
	// RTOMax caps the adaptive timeout, including Karn backoff (default
	// 8 × Interval).
	RTOMax time.Duration
}

// Defaults fills zero fields with the paper's best-compromise values.
func (c Config) Defaults() Config {
	if c.QueueSize == 0 {
		c.QueueSize = 32
	}
	if c.Interval == 0 {
		c.Interval = time.Millisecond
	}
	if c.AckEveryDiv == 0 {
		c.AckEveryDiv = 4
	}
	if c.DelayedAck == 0 {
		c.DelayedAck = 30 * time.Microsecond
	}
	if c.Adaptive {
		if c.RTOMin == 0 {
			c.RTOMin = 200 * time.Microsecond
		}
		if c.RTOMax == 0 {
			c.RTOMax = 8 * c.Interval
		}
	}
	return c
}

// Entry is one unacknowledged packet parked in a retransmission queue. The
// NIC keeps the actual buffer; Payload is its handle.
type Entry struct {
	Dst     topology.NodeID
	Gen     uint32
	Seq     uint64
	Size    int
	Payload any

	// Sent is true once the packet has been transmitted at least once
	// (or consumed by send-side error injection). Unsent entries are
	// still in the NIC transmit queue and are never retransmitted.
	Sent     bool
	LastSent sim.Time
	// InFlight counts copies of the packet currently sitting in the NIC
	// transmit queue or streaming onto the wire. The timer never
	// re-batches an in-flight entry: when the head of a path is blocked
	// (e.g. a wormhole deadlock waiting out the watchdog), re-queueing
	// the packets behind it would grow the transmit queue without bound
	// and keep the network saturated with doomed worms forever. A
	// counter (not a bool) because a generation reset can briefly put a
	// second copy in the queue while a stale one is still draining.
	InFlight int
	// Retransmits counts how many times the entry has been resent.
	Retransmits int
}

type destState struct {
	nextSeq      uint64
	gen          uint32
	queue        []*Entry // unacked, ascending seq
	lastProgress sim.Time // last ack that freed something (or creation)
	sinceAckReq  int      // packets since an ack was last requested
	unreachable  bool

	// Adaptive-timeout state (Jacobson/Karn), used only with
	// Config.Adaptive: smoothed RTT and variance in nanoseconds, and the
	// exponential backoff applied after each unanswered retransmission.
	srtt    int64
	rttvar  int64
	hasRTT  bool
	backoff uint
}

// Sender is the send side of the protocol for one NIC.
type Sender struct {
	cfg   Config
	dests map[topology.NodeID]*destState

	// Counters.
	Prepared      uint64
	Acked         uint64
	RetransBursts uint64
	RetransPkts   uint64
}

// NewSender returns a Sender with the given configuration (zero fields
// defaulted).
func NewSender(cfg Config) *Sender {
	cfg = cfg.Defaults()
	if cfg.QueueSize < 1 {
		panic(fmt.Sprintf("retrans: queue size %d < 1", cfg.QueueSize))
	}
	return &Sender{cfg: cfg, dests: make(map[topology.NodeID]*destState)}
}

// Config returns the sender's configuration.
func (s *Sender) Config() Config { return s.cfg }

func (s *Sender) dest(dst topology.NodeID, now sim.Time) *destState {
	d := s.dests[dst]
	if d == nil {
		d = &destState{lastProgress: now}
		s.dests[dst] = d
	}
	return d
}

// Prepare assigns the next (generation, sequence) pair for a packet to dst,
// appends its entry to the retransmission queue, and decides the ack-
// request level using sender-based feedback given the current free buffer
// count. The caller must have reserved a send buffer already.
func (s *Sender) Prepare(dst topology.NodeID, now sim.Time, freeBuffers int, payload any, size int) *Entry {
	d := s.dest(dst, now)
	d.unreachable = false
	if len(d.queue) == 0 {
		// Nothing was awaiting acknowledgment, so the time since the last
		// ack was idleness, not lack of progress. Without this reset, the
		// first packet after a think-time gap longer than
		// PermFailThreshold looks instantly stale and triggers a spurious
		// remap of a healthy path.
		d.lastProgress = now
	}
	e := &Entry{
		Dst:     dst,
		Gen:     d.gen,
		Seq:     d.nextSeq,
		Size:    size,
		Payload: payload,
	}
	d.nextSeq++
	d.queue = append(d.queue, e)
	s.Prepared++
	return e
}

// AckRequestFor computes the sender-based-feedback ack level for an entry
// about to be transmitted for the first time (§4.1.2): nearly out of
// buffers → immediate explicit ack; under moderate pressure → delayed
// (piggyback-or-timeout) ack; plenty of buffers → delayed ack every K-th
// packet only.
func (s *Sender) AckRequestFor(e *Entry, freeBuffers int) proto.AckLevel {
	d := s.dests[e.Dst]
	q := s.cfg.QueueSize
	if s.cfg.FixedAckEvery > 0 {
		// Ablation: fixed-period ack requests, no buffer feedback —
		// except that a sender completely out of buffers still demands
		// an immediate ack (otherwise it deadlocks against itself).
		if freeBuffers == 0 {
			d.sinceAckReq = 0
			return proto.AckImmediate
		}
		d.sinceAckReq++
		if d.sinceAckReq >= s.cfg.FixedAckEvery {
			d.sinceAckReq = 0
			return proto.AckDelayed
		}
		return proto.AckNone
	}
	switch {
	case freeBuffers*4 <= q:
		d.sinceAckReq = 0
		return proto.AckImmediate
	case freeBuffers*4 <= 3*q:
		d.sinceAckReq = 0
		return proto.AckDelayed
	default:
		d.sinceAckReq++
		k := q / s.cfg.AckEveryDiv
		if k < 1 {
			k = 1
		}
		if d.sinceAckReq >= k {
			d.sinceAckReq = 0
			return proto.AckDelayed
		}
		return proto.AckNone
	}
}

// OnTransmitted records that entry e reached the wire (or was consumed by
// send-side error injection, which the paper's methodology treats
// identically).
func (s *Sender) OnTransmitted(e *Entry, now sim.Time) {
	e.Sent = true
	e.LastSent = now
}

// OnAck processes a cumulative acknowledgment from dst covering every
// sequence number ≤ ackSeq of generation ackGen. It returns the freed
// entries (whose buffers the NIC may recycle). Stale-generation acks free
// nothing.
func (s *Sender) OnAck(dst topology.NodeID, ackGen uint32, ackSeq uint64, now sim.Time) []*Entry {
	d := s.dests[dst]
	if d == nil || ackGen != d.gen {
		return nil
	}
	i := 0
	for i < len(d.queue) && d.queue[i].Seq <= ackSeq {
		i++
	}
	if i == 0 {
		return nil
	}
	freed := d.queue[:i:i]
	d.queue = d.queue[i:]
	d.lastProgress = now
	s.Acked += uint64(len(freed))
	if s.cfg.Adaptive {
		// Karn's algorithm: only never-retransmitted entries give an
		// unambiguous RTT (the ack provably answers this transmission).
		// Sample the newest qualifying entry of the run.
		for j := len(freed) - 1; j >= 0; j-- {
			e := freed[j]
			if e.Sent && e.Retransmits == 0 {
				s.ObserveRTT(dst, now.Sub(e.LastSent))
				break
			}
		}
	}
	return freed
}

// ObserveRTT feeds one path round-trip sample for dst into the adaptive
// timeout estimator (Jacobson: SRTT += (rtt−SRTT)/8, RTTVAR +=
// (|rtt−SRTT|−RTTVAR)/4) and, since a fresh sample proves the path
// answers, resets the Karn backoff. Samples come from unambiguous data
// acks (OnAck) and from liveness control traffic (the NIC). No-op unless
// Adaptive.
func (s *Sender) ObserveRTT(dst topology.NodeID, rtt time.Duration) {
	if !s.cfg.Adaptive || rtt < 0 {
		return
	}
	d := s.dests[dst]
	if d == nil {
		return
	}
	r := int64(rtt)
	if !d.hasRTT {
		d.srtt = r
		d.rttvar = r / 2
		d.hasRTT = true
	} else {
		diff := r - d.srtt
		if diff < 0 {
			diff = -diff
		}
		d.rttvar += (diff - d.rttvar) / 4
		d.srtt += (r - d.srtt) / 8
	}
	d.backoff = 0
}

// timeoutFor returns the retransmission timeout in force for one
// destination: the fixed Interval, or with Adaptive the Jacobson RTO
// (SRTT + 4·RTTVAR clamped to [RTOMin, RTOMax]) doubled per unanswered
// retransmission burst (Karn backoff, capped at RTOMax).
func (s *Sender) timeoutFor(d *destState) time.Duration {
	if !s.cfg.Adaptive {
		return s.cfg.Interval
	}
	to := s.cfg.Interval
	if d.hasRTT {
		to = time.Duration(d.srtt + 4*d.rttvar)
		if to < s.cfg.RTOMin {
			to = s.cfg.RTOMin
		}
	}
	for i := uint(0); i < d.backoff && to < s.cfg.RTOMax; i++ {
		to *= 2
	}
	if to > s.cfg.RTOMax {
		to = s.cfg.RTOMax
	}
	return to
}

// TimeoutFor exposes the timeout in force for dst (Interval when the
// destination is unknown) — diagnostics and tests.
func (s *Sender) TimeoutFor(dst topology.NodeID) time.Duration {
	if d := s.dests[dst]; d != nil {
		return s.timeoutFor(d)
	}
	return s.cfg.Interval
}

// NextDeadline returns the earliest instant at which any destination's
// timeout can expire: min over eligible queue heads of LastSent +
// timeoutFor. ok is false when nothing is awaiting a timeout (all queues
// empty, unsent, or in flight). The NIC's adaptive timer uses it to
// schedule the next scan at the deadline instead of a fixed period, which
// removes the up-to-one-period detection blind spot of a free-running
// scan.
func (s *Sender) NextDeadline() (deadline sim.Time, ok bool) {
	for _, d := range s.dests {
		if len(d.queue) == 0 || d.unreachable {
			continue
		}
		head := d.queue[0]
		if !head.Sent || head.InFlight > 0 {
			continue
		}
		dl := head.LastSent.Add(s.timeoutFor(d))
		if !ok || dl < deadline {
			deadline, ok = dl, true
		}
	}
	return deadline, ok
}

// Batch is a go-back-N retransmission order for one destination: resend
// Entries in order. The last entry of a batch should request an immediate
// ack so the sender resynchronizes quickly.
type Batch struct {
	Dst     topology.NodeID
	Entries []*Entry
	// Oldest is how long the head entry had gone without (re)transmission
	// when the timer fired — the true timeout-detection latency for this
	// burst: the timeout in force plus however long the head sat eligible
	// waiting for the next scan.
	Oldest time.Duration
	// Timeout is the threshold that was in force for this destination
	// when the burst was detected (Interval, or the adaptive RTO).
	Timeout time.Duration
	// Waited is the scan-quantization component of Oldest: how long the
	// head had already been PAST its timeout when the scan found it
	// (Oldest − Timeout). A burst becoming eligible just after a tick
	// waits up to a full scan period here — the detection blind spot the
	// adaptive deadline-driven timer closes.
	Waited time.Duration
}

// Tick runs the single periodic retransmission timer: for every
// destination whose oldest transmitted packet has gone unacknowledged for
// at least the interval, it returns the full ordered list of transmitted
// packets to resend (go-back-N). Entries' LastSent are updated to now;
// the NIC must transmit them (ahead of any queued new packets for the same
// destination, to preserve wire order).
func (s *Sender) Tick(now sim.Time) []Batch {
	var out []Batch
	dsts := s.destIDs()
	for _, dst := range dsts {
		d := s.dests[dst]
		if len(d.queue) == 0 || d.unreachable {
			continue
		}
		head := d.queue[0]
		age := now.Sub(head.LastSent)
		timeout := s.timeoutFor(d)
		if !head.Sent || head.InFlight > 0 || age < timeout {
			continue
		}
		var batch []*Entry
		for _, e := range d.queue {
			if !e.Sent || e.InFlight > 0 {
				break // still queued at the NIC or on the wire
			}
			e.LastSent = now
			e.Retransmits++
			batch = append(batch, e)
		}
		if len(batch) > 0 {
			s.RetransBursts++
			s.RetransPkts += uint64(len(batch))
			if s.cfg.Adaptive && d.backoff < 16 {
				// Karn backoff: each unanswered burst doubles the next
				// timeout until a fresh sample arrives.
				d.backoff++
			}
			out = append(out, Batch{
				Dst: dst, Entries: batch,
				Oldest: age, Timeout: timeout, Waited: age - timeout,
			})
		}
	}
	return out
}

// destIDs returns destination IDs in ascending order for determinism.
func (s *Sender) destIDs() []topology.NodeID {
	ids := make([]topology.NodeID, 0, len(s.dests))
	for id := range s.dests {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Unacked returns the number of entries queued for dst.
func (s *Sender) Unacked(dst topology.NodeID) int {
	d := s.dests[dst]
	if d == nil {
		return 0
	}
	return len(d.queue)
}

// TotalUnacked returns the number of entries queued across all
// destinations — the number of send buffers in use.
func (s *Sender) TotalUnacked() int {
	t := 0
	for _, d := range s.dests {
		t += len(d.queue)
	}
	return t
}

// StalePaths returns destinations that look permanently failed: queued
// packets with no acknowledgment progress for PermFailThreshold. Returns
// nil when detection is disabled.
func (s *Sender) StalePaths(now sim.Time) []topology.NodeID {
	if s.cfg.PermFailThreshold == 0 {
		return nil
	}
	var out []topology.NodeID
	for _, dst := range s.destIDs() {
		d := s.dests[dst]
		if len(d.queue) == 0 || d.unreachable {
			continue
		}
		if d.queue[0].Sent && now.Sub(d.lastProgress) >= s.cfg.PermFailThreshold {
			out = append(out, dst)
		}
	}
	return out
}

// ResetGeneration starts a new sequence generation for dst after a
// successful remap (§4.2): queued packets are renumbered from zero under
// the new generation and marked unsent; the NIC must re-enqueue them for
// transmission. Returns the renumbered entries in order.
func (s *Sender) ResetGeneration(dst topology.NodeID, now sim.Time) []*Entry {
	d := s.dest(dst, now)
	d.gen++
	d.nextSeq = uint64(len(d.queue))
	d.lastProgress = now
	d.sinceAckReq = 0
	d.unreachable = false
	// The remap installed a different physical path: keep the smoothed
	// RTT as a prior but drop the Karn backoff so the first timeout on
	// the new path is not inflated by the old path's failures.
	d.backoff = 0
	for i, e := range d.queue {
		e.Gen = d.gen
		e.Seq = uint64(i)
		e.Sent = false
		e.LastSent = 0
	}
	return append([]*Entry(nil), d.queue...)
}

// Generation returns the current sequence generation for dst.
func (s *Sender) Generation(dst topology.NodeID) uint32 {
	if d := s.dests[dst]; d != nil {
		return d.gen
	}
	return 0
}

// MarkUnreachable drops every pending packet for dst (the paper: "if no
// alternative route to a node exists, the node is labeled as unreachable
// and any pending packets are dropped") and returns the dropped entries so
// the NIC can free their buffers.
func (s *Sender) MarkUnreachable(dst topology.NodeID) []*Entry {
	d := s.dests[dst]
	if d == nil {
		return nil
	}
	dropped := d.queue
	d.queue = nil
	d.unreachable = true
	return dropped
}

// Unreachable reports whether dst is currently marked unreachable.
func (s *Sender) Unreachable(dst topology.NodeID) bool {
	d := s.dests[dst]
	return d != nil && d.unreachable
}
