package proptest

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sanft/internal/trace"
)

// Corpus files are line-oriented text so failures diff readably in review
// and the fuzzer can mutate them meaningfully.
//
// Lockstep ("lockstep v1"):
//
//	lockstep v1
//	seed 42
//	queue 4
//	dests 2
//	mutation ack-eager
//	op send 0
//	op deliver 0
//
// Simulator ("sim v1"):
//
//	sim v1
//	seed 42
//	topo chain hosts 2 switches 3 width 1 topo-seed 7
//	pairs 2 msgs 4 bytes 512 gap 200000
//	fault link-kill at 3000000 dur 0 idx 1 rate 0

// FormatOps encodes a lockstep scenario (plus the mutation it must be run
// under) as a corpus file.
func FormatOps(sc OpScenario, mut Mutation) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "lockstep v1\n")
	fmt.Fprintf(&b, "seed %d\n", sc.Seed)
	fmt.Fprintf(&b, "queue %d\n", sc.QueueSize)
	fmt.Fprintf(&b, "dests %d\n", sc.Dests)
	fmt.Fprintf(&b, "mutation %s\n", mut)
	for _, op := range sc.Ops {
		fmt.Fprintf(&b, "op %s %d\n", op.Kind, op.Dst)
	}
	return []byte(b.String())
}

// ParseOps decodes a lockstep corpus file.
func ParseOps(data []byte) (OpScenario, Mutation, error) {
	var sc OpScenario
	mut := MutNone
	s := bufio.NewScanner(strings.NewReader(string(data)))
	if !s.Scan() || strings.TrimSpace(s.Text()) != "lockstep v1" {
		return sc, mut, fmt.Errorf("proptest: not a lockstep v1 corpus file")
	}
	for s.Scan() {
		line := strings.TrimSpace(s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		var err error
		switch f[0] {
		case "seed":
			_, err = fmt.Sscanf(line, "seed %d", &sc.Seed)
		case "queue":
			_, err = fmt.Sscanf(line, "queue %d", &sc.QueueSize)
		case "dests":
			_, err = fmt.Sscanf(line, "dests %d", &sc.Dests)
		case "mutation":
			if len(f) != 2 {
				return sc, mut, fmt.Errorf("proptest: bad mutation line %q", line)
			}
			mut, err = parseMutation(f[1])
		case "op":
			if len(f) != 3 {
				return sc, mut, fmt.Errorf("proptest: bad op line %q", line)
			}
			var op Op
			op.Kind, err = parseOpKind(f[1])
			if err == nil {
				_, err = fmt.Sscanf(f[2], "%d", &op.Dst)
			}
			sc.Ops = append(sc.Ops, op)
		default:
			err = fmt.Errorf("unknown directive %q", f[0])
		}
		if err != nil {
			return sc, mut, fmt.Errorf("proptest: parse %q: %w", line, err)
		}
	}
	if sc.QueueSize < 1 || sc.QueueSize > 1024 {
		return sc, mut, fmt.Errorf("proptest: queue size %d out of range", sc.QueueSize)
	}
	if sc.Dests < 1 || sc.Dests > 64 {
		return sc, mut, fmt.Errorf("proptest: dest count %d out of range", sc.Dests)
	}
	return sc, mut, nil
}

func parseOpKind(s string) (OpKind, error) {
	for i, n := range opNames {
		if s == n {
			return OpKind(i), nil
		}
	}
	return 0, fmt.Errorf("unknown op kind %q", s)
}

func parseMutation(s string) (Mutation, error) {
	for _, m := range []Mutation{MutNone, MutAckEager, MutAcceptOOO} {
		if s == m.String() {
			return m, nil
		}
	}
	return MutNone, fmt.Errorf("unknown mutation %q", s)
}

// FormatSim encodes a simulator scenario as a corpus file.
func FormatSim(sc SimScenario) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "sim v1\n")
	fmt.Fprintf(&b, "seed %d\n", sc.Seed)
	fmt.Fprintf(&b, "topo %s hosts %d switches %d width %d topo-seed %d\n",
		sc.Topo.Kind, sc.Topo.Hosts, sc.Topo.Switches, sc.Topo.Width, sc.Topo.Seed)
	fmt.Fprintf(&b, "pairs %d msgs %d bytes %d gap %d\n", sc.Pairs, sc.Msgs, sc.Bytes, sc.Gap.Nanoseconds())
	for _, f := range sc.Faults {
		fmt.Fprintf(&b, "fault %s at %d dur %d idx %d rate %g\n",
			f.Kind, f.At.Nanoseconds(), f.Dur.Nanoseconds(), f.Index, f.Rate)
	}
	return []byte(b.String())
}

// ParseSim decodes a simulator corpus file.
func ParseSim(data []byte) (SimScenario, error) {
	var sc SimScenario
	s := bufio.NewScanner(strings.NewReader(string(data)))
	if !s.Scan() || strings.TrimSpace(s.Text()) != "sim v1" {
		return sc, fmt.Errorf("proptest: not a sim v1 corpus file")
	}
	for s.Scan() {
		line := strings.TrimSpace(s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		var err error
		switch f[0] {
		case "seed":
			_, err = fmt.Sscanf(line, "seed %d", &sc.Seed)
		case "topo":
			if len(f) != 10 {
				return sc, fmt.Errorf("proptest: bad topo line %q", line)
			}
			sc.Topo.Kind, err = parseTopoKind(f[1])
			if err == nil {
				_, err = fmt.Sscanf(strings.Join(f[2:], " "),
					"hosts %d switches %d width %d topo-seed %d",
					&sc.Topo.Hosts, &sc.Topo.Switches, &sc.Topo.Width, &sc.Topo.Seed)
			}
		case "pairs":
			var gapNS int64
			_, err = fmt.Sscanf(line, "pairs %d msgs %d bytes %d gap %d",
				&sc.Pairs, &sc.Msgs, &sc.Bytes, &gapNS)
			sc.Gap = time.Duration(gapNS)
		case "fault":
			if len(f) != 10 {
				return sc, fmt.Errorf("proptest: bad fault line %q", line)
			}
			var fe FaultEvent
			fe.Kind, err = parseFaultKind(f[1])
			if err == nil {
				var atNS, durNS int64
				_, err = fmt.Sscanf(strings.Join(f[2:], " "),
					"at %d dur %d idx %d rate %g", &atNS, &durNS, &fe.Index, &fe.Rate)
				fe.At, fe.Dur = time.Duration(atNS), time.Duration(durNS)
			}
			sc.Faults = append(sc.Faults, fe)
		default:
			err = fmt.Errorf("unknown directive %q", f[0])
		}
		if err != nil {
			return sc, fmt.Errorf("proptest: parse %q: %w", line, err)
		}
	}
	return sc, sc.validate()
}

func (sc SimScenario) validate() error {
	switch {
	case sc.Pairs < 0 || sc.Pairs > 256:
		return fmt.Errorf("proptest: pairs %d out of range", sc.Pairs)
	case sc.Msgs < 0 || sc.Msgs > 256:
		return fmt.Errorf("proptest: msgs %d out of range", sc.Msgs)
	case sc.Bytes < 0 || sc.Bytes > 1<<16:
		return fmt.Errorf("proptest: bytes %d out of range", sc.Bytes)
	case sc.Gap < 0 || sc.Gap > time.Second:
		return fmt.Errorf("proptest: gap %v out of range", sc.Gap)
	case len(sc.Faults) > 64:
		return fmt.Errorf("proptest: %d faults, max 64", len(sc.Faults))
	}
	for _, f := range sc.Faults {
		if f.At < 0 || f.At > 10*time.Second || f.Dur < 0 || f.Dur > 10*time.Second {
			return fmt.Errorf("proptest: fault %v out of time range", f)
		}
		if f.Rate < 0 || f.Rate > 1 {
			return fmt.Errorf("proptest: fault rate %g out of range", f.Rate)
		}
	}
	return nil
}

func parseTopoKind(s string) (TopoKind, error) {
	for i, n := range topoNames {
		if s == n {
			return TopoKind(i), nil
		}
	}
	return 0, fmt.Errorf("unknown topology kind %q", s)
}

func parseFaultKind(s string) (FaultKind, error) {
	for i, n := range faultNames {
		if s == n {
			return FaultKind(i), nil
		}
	}
	return 0, fmt.Errorf("unknown fault kind %q", s)
}

// OpsFromBytes decodes raw fuzzer input into a lockstep scenario: two
// header bytes pick the structure, every following byte is one op. Any
// byte string is a valid scenario.
func OpsFromBytes(data []byte) OpScenario {
	sc := OpScenario{QueueSize: 2, Dests: 1}
	if len(data) == 0 {
		return sc
	}
	sc.QueueSize = []int{1, 2, 3, 4, 8, 16, 24, 32}[int(data[0])%8]
	if len(data) < 2 {
		return sc
	}
	sc.Dests = 1 + int(data[1])%4
	for _, b := range data[2:] {
		sc.Ops = append(sc.Ops, Op{
			Kind: OpKind(b % uint8(numOpKinds)),
			Dst:  int(b/uint8(numOpKinds)) % sc.Dests,
		})
	}
	return sc
}

// WriteFailureArtifacts dumps everything needed to triage a failing
// simulator scenario into dir: the corpus repro, the flight-recorder text
// dump, and a Perfetto-loadable trace. Returns the corpus file path.
func WriteFailureArtifacts(dir, name string, res *SimResult) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	corpusPath := filepath.Join(dir, name+".sim")
	if err := os.WriteFile(corpusPath, FormatSim(res.Scenario), 0o644); err != nil {
		return "", err
	}
	report := fmt.Sprintf("# proptest failure: seed %d\n# violations:\n", res.Scenario.Seed)
	for _, v := range res.Violations {
		report += "#   " + v + "\n"
	}
	if err := os.WriteFile(filepath.Join(dir, name+".txt"), []byte(report), 0o644); err != nil {
		return corpusPath, err
	}
	if res.Recorder != nil {
		events := res.Recorder.Ring().Events()
		if err := writeFile(filepath.Join(dir, name+".timeline"), func(w io.Writer) error {
			return trace.WriteTimeline(w, events)
		}); err != nil {
			return corpusPath, err
		}
		if err := writeFile(filepath.Join(dir, name+".perfetto.json"), func(w io.Writer) error {
			return trace.WriteChromeTrace(w, events)
		}); err != nil {
			return corpusPath, err
		}
	}
	return corpusPath, nil
}

func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
