package proptest

import (
	"fmt"
	"testing"
	"time"

	"sanft/internal/fabric"
	"sanft/internal/mapping"
	"sanft/internal/nic"
	"sanft/internal/retrans"
	"sanft/internal/routing"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

// FuzzRetransProtocol feeds arbitrary byte strings through the lockstep
// differential checker: any decoded schedule on which the implementation
// and the reference model disagree is a finding.
func FuzzRetransProtocol(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{3, 1, 0, 2, 4, 6, 0, 9, 18, 27, 36, 45})
	for seed := int64(1); seed <= 8; seed++ {
		sc := GenOps(seed)
		data := []byte{byte(sc.QueueSize), byte(sc.Dests - 1)}
		for _, op := range sc.Ops {
			data = append(data, uint8(op.Kind)+uint8(numOpKinds)*uint8(op.Dst))
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return
		}
		sc := OpsFromBytes(data)
		if div := RunLockstep(sc, MutNone); div != nil {
			t.Fatalf("divergence: %v\nrepro:\n%s", div, FormatOps(sc, MutNone))
		}
	})
}

// byteAt is a total accessor for fuzz input.
func byteAt(data []byte, i int) byte {
	if i < len(data) {
		return data[i]
	}
	return 0
}

// FuzzTopoBuilders decodes fuzz input into a datacenter builder spec and
// checks the structural contract every in-range spec must satisfy: the
// network validates, the advertised host count matches the closed form for
// the family, the trunk list is exactly the switch-to-switch links with no
// duplicates, and construction is deterministic.
func FuzzTopoBuilders(f *testing.F) {
	f.Add([]byte{0, 1})
	f.Add([]byte{1, 1, 0, 1})
	f.Add([]byte{2, 1, 0, 2})
	f.Add([]byte{5, 3, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec string
		var wantHosts int
		switch byteAt(data, 0) % 3 {
		case 0:
			k := 2 + 2*(int(byteAt(data, 1))%3) // 2, 4, 6
			spec = fmt.Sprintf("fattree:%d", k)
			wantHosts = k * k * k / 4
		case 1:
			a := 1 + int(byteAt(data, 1))%3
			p := 1 + int(byteAt(data, 2))%2
			h := 1 + int(byteAt(data, 3))%2
			spec = fmt.Sprintf("dragonfly:%d,%d,%d", a, p, h)
			wantHosts = (a*h + 1) * a * p
		default:
			hp := 1 + int(byteAt(data, 1))%2
			d1 := 2 + int(byteAt(data, 2))%3
			d2 := 2 + int(byteAt(data, 3))%3
			spec = fmt.Sprintf("torus:%d,%d,%d", hp, d1, d2)
			wantHosts = hp * d1 * d2
		}
		built, err := topology.ParseSpec(spec)
		if err != nil {
			t.Fatalf("in-range spec %q rejected: %v", spec, err)
		}
		nw := built.Net
		if err := nw.Validate(); err != nil {
			t.Fatalf("%s: invalid network: %v", spec, err)
		}
		if len(built.Hosts) != wantHosts || len(nw.Hosts()) != wantHosts {
			t.Fatalf("%s: %d hosts (network %d), want %d",
				spec, len(built.Hosts), len(nw.Hosts()), wantHosts)
		}
		wantTrunks := len(nw.Links) - wantHosts
		if len(built.Trunks) != wantTrunks {
			t.Fatalf("%s: %d trunks, want %d", spec, len(built.Trunks), wantTrunks)
		}
		seen := make(map[int]bool)
		for _, l := range built.Trunks {
			if seen[l.ID] {
				t.Fatalf("%s: trunk %d listed twice", spec, l.ID)
			}
			seen[l.ID] = true
			if nw.Node(l.A.Node).Kind != topology.Switch ||
				nw.Node(l.B.Node).Kind != topology.Switch {
				t.Fatalf("%s: trunk %d touches a host", spec, l.ID)
			}
		}
		again, err := topology.ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if nw.String() != again.Net.String() {
			t.Fatalf("%s: two builds differ", spec)
		}
	})
}

// FuzzMapper decodes fuzz input into a topology plus a set of link kills,
// then runs the on-demand mapper. Properties: the mapper terminates within
// the time bound, and any route it reports must actually walk to the
// target (and its reverse back to the mapper) on the damaged topology.
func FuzzMapper(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 3, 0, 0, 0, 1})
	f.Add([]byte{1, 1, 2, 1, 7, 0, 3})
	f.Add([]byte{4, 4, 3, 0, 9, 2, 1, 5, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			return
		}
		ts := TopoSpec{
			Kind:     TopoKind(byteAt(data, 0) % uint8(numTopoKinds)),
			Hosts:    1 + int(byteAt(data, 1))%6,
			Switches: 2 + int(byteAt(data, 2))%3,
			Width:    1 + int(byteAt(data, 3))%2,
			Seed:     int64(byteAt(data, 4)),
		}
		nw, hosts := ts.Build()
		if len(hosts) < 2 {
			return
		}
		k := sim.New(1)
		fab := fabric.New(k, nw, fabric.DefaultConfig())
		nics := make(map[topology.NodeID]*nic.NIC)
		for _, h := range hosts {
			nics[h] = nic.New(k, fab, h, nic.Options{
				FT:      true,
				Retrans: retrans.Config{QueueSize: 16, Interval: time.Millisecond},
			})
		}
		mapper, target := hosts[0], hosts[1+int(byteAt(data, 5))%(len(hosts)-1)]
		for _, b := range data[min(6, len(data)):] {
			if len(nw.Links) == 0 {
				break
			}
			fab.KillLink(nw.Links[int(b)%len(nw.Links)])
		}
		m := mapping.New(k, nics[mapper], mapping.Config{})
		var fwd, rev routing.Route
		var ok, done bool
		k.Spawn("fuzz-mapper", func(p *sim.Proc) {
			fwd, rev, _, ok = m.MapTo(p, target)
			done = true
		})
		k.RunFor(3 * time.Second)
		k.Stop()
		if !done || !ok {
			return // not finding a route (or running out of time) is legal
		}
		res, err := routing.Walk(nw, mapper, fwd)
		if err != nil || res.Dst != target {
			t.Fatalf("mapper returned invalid route %v to %d on damaged topology: %v -> %v",
				fwd, target, err, res.Dst)
		}
		rres, err := routing.Walk(nw, target, rev)
		if err != nil || rres.Dst != mapper {
			t.Fatalf("mapper returned invalid reverse route %v: %v -> %v", rev, err, rres.Dst)
		}
	})
}
