package proptest

// shrinkSlice minimizes items while fails(items) stays true, delta-debugging
// style: remove progressively smaller chunks, restarting at coarse
// granularity after any successful removal, down to single elements. fails
// must be deterministic; the input is assumed to fail.
func shrinkSlice[T any](items []T, fails func([]T) bool) []T {
	cur := append([]T(nil), items...)
	for chunk := (len(cur) + 1) / 2; chunk >= 1; {
		removed := false
		for start := 0; start+chunk <= len(cur); {
			cand := make([]T, 0, len(cur)-chunk)
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[start+chunk:]...)
			if fails(cand) {
				cur = cand
				removed = true
				// Do not advance start: the next chunk slid into place.
			} else {
				start += chunk
			}
		}
		if removed && chunk < (len(cur)+1)/2 {
			chunk = (len(cur) + 1) / 2 // coarsen again after progress
		} else {
			chunk /= 2
		}
	}
	return cur
}

// ShrinkOps minimizes a failing lockstep scenario: first the op schedule,
// then the structural parameters (destination count, queue size). The
// returned scenario still fails under the same mutation.
func ShrinkOps(sc OpScenario, mut Mutation) OpScenario {
	fails := func(cand OpScenario) bool { return RunLockstep(cand, mut) != nil }
	sc.Ops = shrinkSlice(sc.Ops, func(ops []Op) bool {
		cand := sc
		cand.Ops = ops
		return fails(cand)
	})
	for sc.Dests > 1 {
		cand := sc
		cand.Dests = sc.Dests - 1 // ops aimed at the removed dest become no-ops
		if !fails(cand) {
			break
		}
		sc = cand
	}
	for _, q := range []int{1, 2, 4, 8} {
		if q >= sc.QueueSize {
			break
		}
		cand := sc
		cand.QueueSize = q
		if fails(cand) {
			sc = cand
			break
		}
	}
	return sc
}

// ShrinkSim minimizes a failing simulator scenario: the fault schedule
// first, then the workload dimensions. Each probe is a full simulation run,
// so the workload reductions are linear scans over small ranges.
func ShrinkSim(sc SimScenario) SimScenario {
	fails := func(cand SimScenario) bool { return RunSim(cand).Failed() }
	sc.Faults = shrinkSlice(sc.Faults, func(fs []FaultEvent) bool {
		cand := sc
		cand.Faults = fs
		return fails(cand)
	})
	for sc.Pairs > 1 {
		cand := sc
		cand.Pairs = sc.Pairs - 1
		if !fails(cand) {
			break
		}
		sc = cand
	}
	for sc.Msgs > 1 {
		cand := sc
		cand.Msgs = sc.Msgs - 1
		if !fails(cand) {
			break
		}
		sc = cand
	}
	return sc
}
