package proptest

import (
	"fmt"
	"math/rand"
	"time"

	"sanft/internal/proto"
	"sanft/internal/retrans"
	"sanft/internal/sim"
	"sanft/internal/topology"
)

// OpKind enumerates the lockstep schedule alphabet. Every op is total: when
// its precondition does not hold (send with no free buffer, deliver from an
// empty wire) it is a no-op on both the implementation and the model, so any
// subsequence of a failing schedule is itself a valid schedule — which is
// what makes shrinking sound.
type OpKind uint8

const (
	// OpSend prepares a packet and transmits it onto the wire.
	OpSend OpKind = iota
	// OpSendLost prepares and transmits, but the frame is consumed by
	// send-side error injection and never reaches the wire.
	OpSendLost
	// OpDeliver hands the oldest wire frame to the receiver.
	OpDeliver
	// OpDropWire discards the oldest wire frame (transit loss).
	OpDropWire
	// OpAck makes the receiver emit its cumulative ack (delayed-ack timer
	// firing, or a piggyback opportunity) and the sender process it.
	OpAck
	// OpAckLost emits the cumulative ack but loses it on the reverse path.
	OpAckLost
	// OpTick advances time past the retransmission interval and fires the
	// go-back-N timer; retransmitted frames go onto the wire.
	OpTick
	// OpReset performs a generation reset (successful remap, §4.2) and
	// retransmits the renumbered queue.
	OpReset
	// OpUnreachable marks the destination unreachable, dropping its queue.
	OpUnreachable

	numOpKinds
)

var opNames = [...]string{
	"send", "send-lost", "deliver", "drop-wire", "ack", "ack-lost",
	"tick", "reset", "unreachable",
}

func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one scheduled protocol event aimed at destination index Dst.
type Op struct {
	Kind OpKind
	Dst  int
}

func (o Op) String() string { return fmt.Sprintf("%s@%d", o.Kind, o.Dst) }

// OpScenario is a complete lockstep test case: fully determined by its
// fields, no hidden randomness.
type OpScenario struct {
	Seed      int64
	QueueSize int
	Dests     int
	Ops       []Op
}

// GenOps derives a lockstep scenario from a single seed.
func GenOps(seed int64) OpScenario {
	rng := rand.New(rand.NewSource(seed))
	sc := OpScenario{
		Seed:      seed,
		QueueSize: []int{2, 3, 4, 8, 16}[rng.Intn(5)],
		Dests:     1 + rng.Intn(3),
	}
	n := 20 + rng.Intn(41)
	for i := 0; i < n; i++ {
		sc.Ops = append(sc.Ops, Op{Kind: randOpKind(rng), Dst: rng.Intn(sc.Dests)})
	}
	return sc
}

// randOpKind picks an op kind, biased toward the productive ones so
// schedules actually move data instead of spinning on resets.
func randOpKind(rng *rand.Rand) OpKind {
	switch r := rng.Intn(100); {
	case r < 30:
		return OpSend
	case r < 36:
		return OpSendLost
	case r < 60:
		return OpDeliver
	case r < 66:
		return OpDropWire
	case r < 78:
		return OpAck
	case r < 82:
		return OpAckLost
	case r < 92:
		return OpTick
	case r < 96:
		return OpReset
	default:
		return OpUnreachable
	}
}

// Mutation selects a deliberate protocol bug injected into the real side of
// the lockstep run, to prove the differential checker can see it.
type Mutation uint8

const (
	// MutNone runs the implementation unmodified.
	MutNone Mutation = iota
	// MutAckEager acknowledges one sequence number beyond what the
	// receiver has committed — the classic ack-before-commit bug: a loss
	// of the in-flight frame after such an ack is silent data loss.
	MutAckEager
	// MutAcceptOOO delivers an out-of-order frame instead of dropping it,
	// violating the drop-don't-buffer FIFO contract.
	MutAcceptOOO
)

func (m Mutation) String() string {
	switch m {
	case MutNone:
		return "none"
	case MutAckEager:
		return "ack-eager"
	case MutAcceptOOO:
		return "accept-ooo"
	}
	return fmt.Sprintf("mutation(%d)", uint8(m))
}

// Divergence describes the first point where implementation and model
// disagreed. OpIndex is -1 when the divergence surfaced during the final
// drain rather than under a scheduled op.
type Divergence struct {
	Scenario OpScenario
	OpIndex  int
	Kind     string
	Detail   string
}

func (d *Divergence) Error() string {
	at := "drain"
	if d.OpIndex >= 0 {
		at = fmt.Sprintf("op %d (%s)", d.OpIndex, d.Scenario.Ops[d.OpIndex])
	}
	return fmt.Sprintf("lockstep divergence at %s: %s: %s", at, d.Kind, d.Detail)
}

// wireFrame is one data frame in flight on the harness-owned lossy FIFO
// channel toward a destination.
type wireFrame struct {
	gen uint32
	seq uint64
	req proto.AckLevel
}

// lockstep drives one real Sender plus per-destination Receivers against
// the reference model over a simulated wire.
type lockstep struct {
	sc  OpScenario
	mut Mutation

	s     *retrans.Sender
	rcvs  []*retrans.Receiver
	model *refModel

	now  sim.Time
	wire [][]wireFrame

	// delivered logs (gen, seq) pairs committed to each destination's
	// host, on both sides, for the delivery-set/ordering oracle.
	realDelivered  [][]wireFrame
	modelDelivered [][]wireFrame

	div *Divergence
}

// lockstepInterval is the retransmission timer period used by every
// lockstep run; OpTick advances time by exactly this much.
const lockstepInterval = time.Millisecond

// srcNode is the (arbitrary, constant) node ID the single sender uses when
// talking to receivers.
const srcNode = topology.NodeID(0)

// dstNode maps a destination index to a node ID for the real sender.
func dstNode(d int) topology.NodeID { return topology.NodeID(d + 1) }

// RunLockstep executes the scenario against both implementation and model
// and returns the first divergence, or nil if they agreed throughout and
// the protocol drained (liveness).
func RunLockstep(sc OpScenario, mut Mutation) *Divergence {
	if sc.QueueSize < 1 || sc.Dests < 1 {
		return nil
	}
	ls := &lockstep{
		sc:  sc,
		mut: mut,
		s: retrans.NewSender(retrans.Config{
			QueueSize: sc.QueueSize,
			Interval:  lockstepInterval,
		}),
		model:          newRefModel(sc.QueueSize, lockstepInterval),
		wire:           make([][]wireFrame, sc.Dests),
		realDelivered:  make([][]wireFrame, sc.Dests),
		modelDelivered: make([][]wireFrame, sc.Dests),
	}
	for i := 0; i < sc.Dests; i++ {
		ls.rcvs = append(ls.rcvs, retrans.NewReceiver(retrans.Config{
			QueueSize: sc.QueueSize,
			Interval:  lockstepInterval,
		}))
	}
	for i, op := range sc.Ops {
		ls.apply(i, op)
		if ls.div != nil {
			return ls.div
		}
	}
	ls.drain()
	return ls.div
}

func (ls *lockstep) fail(opIndex int, kind, format string, args ...any) {
	if ls.div == nil {
		ls.div = &Divergence{
			Scenario: ls.sc, OpIndex: opIndex, Kind: kind,
			Detail: fmt.Sprintf(format, args...),
		}
	}
}

// apply executes one op on both sides, cross-checking every observable.
func (ls *lockstep) apply(i int, op Op) {
	d := op.Dst
	if d < 0 || d >= ls.sc.Dests {
		return
	}
	ls.now = ls.now.Add(time.Microsecond)
	switch op.Kind {
	case OpSend:
		ls.send(i, d, false)
	case OpSendLost:
		ls.send(i, d, true)
	case OpDeliver:
		ls.deliver(i, d)
	case OpDropWire:
		if len(ls.wire[d]) > 0 {
			ls.wire[d] = ls.wire[d][1:]
		}
	case OpAck:
		ls.emitAck(i, d, false)
	case OpAckLost:
		ls.emitAck(i, d, true)
	case OpTick:
		ls.now = ls.now.Add(lockstepInterval)
		ls.tick(i)
	case OpReset:
		ls.reset(i, d)
	case OpUnreachable:
		ls.unreachable(i, d)
	}
}

// send mirrors the NIC transmit path: reserve a buffer (no-op when none is
// free), Prepare, compute the ack-request level from the post-reservation
// free count, transmit. A lost send still consumes its transmission — the
// entry sits in the queue awaiting the timer.
func (ls *lockstep) send(i, d int, lost bool) {
	free := ls.sc.QueueSize - ls.s.TotalUnacked()
	if free <= 0 {
		if ls.model.free() > 0 {
			ls.fail(i, "buffers", "implementation out of buffers, model has %d free", ls.model.free())
		}
		return
	}
	if ls.model.free() <= 0 {
		ls.fail(i, "buffers", "model out of buffers, implementation has %d free", free)
		return
	}
	freeAfter := free - 1 // the NIC reserves the buffer before Prepare
	e := ls.s.Prepare(dstNode(d), ls.now, freeAfter, nil, 64)
	lvl := ls.s.AckRequestFor(e, freeAfter)
	ls.s.OnTransmitted(e, ls.now)
	mgen, mseq := ls.model.prepare(d, ls.now)
	mlvl := ls.model.ackLevel(d, freeAfter)
	if e.Gen != mgen || e.Seq != mseq {
		ls.fail(i, "prepare", "implementation numbered (gen %d, seq %d), model (gen %d, seq %d)", e.Gen, e.Seq, mgen, mseq)
		return
	}
	if lvl != mlvl {
		ls.fail(i, "ack-request", "implementation requested %v, model %v", lvl, mlvl)
		return
	}
	if !lost {
		ls.wire[d] = append(ls.wire[d], wireFrame{gen: e.Gen, seq: e.Seq, req: lvl})
	}
}

// deliver pops the oldest wire frame into d's receiver on both sides and
// compares the verdicts; an immediate-ack verdict also emits the ack.
func (ls *lockstep) deliver(i, d int) {
	if len(ls.wire[d]) == 0 {
		return
	}
	f := ls.wire[d][0]
	ls.wire[d] = ls.wire[d][1:]
	v := ls.rcvs[d].OnData(srcNode, f.gen, f.seq, f.req)
	accept := v.Accept
	if ls.mut == MutAcceptOOO && !accept {
		// Inject the bug: commit a frame the protocol says to drop, when
		// it is a same-generation gap frame (lost predecessor).
		if exp := ls.rcvs[d].Expected(srcNode); f.seq > exp {
			accept = true
		}
	}
	maccept, mackNow, marmDelayed := ls.model.onData(d, f.gen, f.seq, f.req)
	if accept {
		ls.realDelivered[d] = append(ls.realDelivered[d], f)
	}
	if maccept {
		ls.modelDelivered[d] = append(ls.modelDelivered[d], f)
	}
	if accept != maccept {
		ls.fail(i, "delivery", "frame (gen %d, seq %d) to dst %d: implementation accept=%v, model accept=%v", f.gen, f.seq, d, accept, maccept)
		return
	}
	if v.AckNow != mackNow || v.ArmDelayed != marmDelayed {
		ls.fail(i, "verdict", "frame (gen %d, seq %d) to dst %d: implementation (ackNow=%v delayed=%v), model (ackNow=%v delayed=%v)",
			f.gen, f.seq, d, v.AckNow, v.ArmDelayed, mackNow, marmDelayed)
		return
	}
	if v.AckNow {
		ls.emitAck(i, d, false)
	}
}

// emitAck makes d's receiver emit its cumulative ack and — unless the ack
// is lost on the reverse path — the sender consume it. The emitted value is
// compared against the model before anything is freed: an ack that covers
// uncommitted data is the divergence, wherever it would have landed.
func (ls *lockstep) emitAck(i, d int, lost bool) {
	gen, seq, ok := ls.rcvs[d].CumAck(srcNode)
	if ok && ls.mut == MutAckEager {
		seq++ // the bug: acknowledge one frame the host never saw
	}
	mgen, mseq, mok := ls.model.cumack(d)
	if ok != mok || (ok && (gen != mgen || seq != mseq)) {
		ls.fail(i, "ack-emission",
			"dst %d emitted cumack (gen %d, seq %d, ok=%v), model says (gen %d, seq %d, ok=%v) — the ack covers data the receiver never committed",
			d, gen, seq, ok, mgen, mseq, mok)
		return
	}
	if !ok {
		return
	}
	ls.rcvs[d].AckEmitted(srcNode)
	ls.model.ackEmitted(d)
	if lost {
		return
	}
	freed := ls.s.OnAck(dstNode(d), gen, seq, ls.now)
	mfreed := ls.model.onAck(d, mgen, mseq)
	if len(freed) != mfreed {
		ls.fail(i, "ack-free", "ack (gen %d, seq %d) freed %d entries in implementation, %d in model", gen, seq, len(freed), mfreed)
	}
}

// tick fires the retransmission timer on both sides, compares the batches,
// and puts retransmitted frames back on the wire. The last frame of each
// burst requests an immediate ack so the sender resynchronizes — mirrored
// identically on both sides, as the NIC does.
func (ls *lockstep) tick(i int) {
	batches := ls.s.Tick(ls.now)
	mbatches := ls.model.tick(ls.now)
	if len(batches) != len(mbatches) {
		ls.fail(i, "timer", "implementation retransmitted %d destinations, model %d", len(batches), len(mbatches))
		return
	}
	for bi, b := range batches {
		mb := mbatches[bi]
		if b.Dst != dstNode(mb.dst) || len(b.Entries) != len(mb.entries) {
			ls.fail(i, "timer", "batch %d: implementation (dst %d, %d entries), model (dst %d, %d entries)",
				bi, b.Dst, len(b.Entries), dstNode(mb.dst), len(mb.entries))
			return
		}
		for ei, e := range b.Entries {
			me := mb.entries[ei]
			if e.Gen != me.gen || e.Seq != me.seq {
				ls.fail(i, "timer", "batch %d entry %d: implementation (gen %d, seq %d), model (gen %d, seq %d)",
					bi, ei, e.Gen, e.Seq, me.gen, me.seq)
				return
			}
			req := proto.AckNone
			if ei == len(b.Entries)-1 {
				req = proto.AckImmediate
			}
			ls.wire[mb.dst] = append(ls.wire[mb.dst], wireFrame{gen: e.Gen, seq: e.Seq, req: req})
		}
	}
}

// reset performs a generation reset and immediately retransmits the
// renumbered queue, recomputing each frame's ack-request level as the NIC
// would when re-enqueueing.
func (ls *lockstep) reset(i, d int) {
	entries := ls.s.ResetGeneration(dstNode(d), ls.now)
	mentries := ls.model.reset(d, ls.now)
	if len(entries) != len(mentries) {
		ls.fail(i, "reset", "implementation renumbered %d entries, model %d", len(entries), len(mentries))
		return
	}
	free := ls.sc.QueueSize - ls.s.TotalUnacked()
	for ei, e := range entries {
		me := mentries[ei]
		if e.Gen != me.gen || e.Seq != me.seq {
			ls.fail(i, "reset", "entry %d: implementation (gen %d, seq %d), model (gen %d, seq %d)", ei, e.Gen, e.Seq, me.gen, me.seq)
			return
		}
		lvl := ls.s.AckRequestFor(e, free)
		mlvl := ls.model.ackLevel(d, free)
		if lvl != mlvl {
			ls.fail(i, "ack-request", "reset entry %d: implementation requested %v, model %v", ei, lvl, mlvl)
			return
		}
		ls.s.OnTransmitted(e, ls.now)
		ls.wire[d] = append(ls.wire[d], wireFrame{gen: e.Gen, seq: e.Seq, req: lvl})
	}
}

func (ls *lockstep) unreachable(i, d int) {
	dropped := ls.s.MarkUnreachable(dstNode(d))
	mdropped := ls.model.markUnreachable(d)
	if len(dropped) != mdropped {
		ls.fail(i, "unreachable", "implementation dropped %d entries, model %d", len(dropped), mdropped)
	}
	if ls.s.Unreachable(dstNode(d)) != (ls.model.dests[d] != nil && ls.model.dests[d].unreachable) {
		ls.fail(i, "unreachable", "unreachable flag disagrees for dst %d", d)
	}
}

// drain closes the run: deliver everything, ack everything, tick, and
// repeat — the protocol must reach a state with no unacknowledged entries
// for any reachable destination (liveness), and the committed delivery
// sequences must match frame for frame.
func (ls *lockstep) drain() {
	const rounds = 8
	for r := 0; r < rounds && ls.div == nil; r++ {
		for d := 0; d < ls.sc.Dests; d++ {
			for len(ls.wire[d]) > 0 && ls.div == nil {
				ls.deliver(-1, d)
			}
			if ls.div != nil {
				return
			}
			ls.emitAck(-1, d, false)
		}
		ls.now = ls.now.Add(lockstepInterval)
		ls.tick(-1)
		if r == rounds/2-1 {
			// Go-back-N alone cannot resynchronize a receiver whose
			// expected sequence the sender no longer holds (e.g. packets
			// dropped by an unreachable verdict, then the destination came
			// back). The full system recovers via the permanent-failure
			// detector: no ack progress → remap → generation reset. Model
			// that here for any path still stuck mid-drain.
			for d := 0; d < ls.sc.Dests; d++ {
				if ls.s.Unacked(dstNode(d)) > 0 && !ls.s.Unreachable(dstNode(d)) {
					ls.reset(-1, d)
				}
			}
		}
	}
	if ls.div != nil {
		return
	}
	for d := 0; d < ls.sc.Dests; d++ {
		real, model := ls.s.Unacked(dstNode(d)), ls.model.unacked(d)
		if real != model {
			ls.fail(-1, "drain", "dst %d: %d unacked in implementation, %d in model", d, real, model)
			return
		}
		if real != 0 && !ls.s.Unreachable(dstNode(d)) {
			ls.fail(-1, "liveness", "dst %d still has %d unacked entries after %d drain rounds", d, real, rounds)
			return
		}
		if len(ls.realDelivered[d]) != len(ls.modelDelivered[d]) {
			ls.fail(-1, "delivery-set", "dst %d: implementation committed %d frames, model %d",
				d, len(ls.realDelivered[d]), len(ls.modelDelivered[d]))
			return
		}
		for fi, f := range ls.realDelivered[d] {
			if mf := ls.modelDelivered[d][fi]; f.gen != mf.gen || f.seq != mf.seq {
				ls.fail(-1, "ordering", "dst %d delivery %d: implementation (gen %d, seq %d), model (gen %d, seq %d)",
					d, fi, f.gen, f.seq, mf.gen, mf.seq)
				return
			}
		}
	}
}
