package proptest

import (
	"math/rand"
	"time"

	"sanft/internal/workload"
)

// GenWorkloadSpec derives a production-traffic workload spec from a
// single seed: protocol, generator discipline, client/op counts, and
// the sizing knobs, all drawn from ranges every backend accepts. Like
// GenSim, the derivation is the contract — one seed fixes the whole
// op schedule, so a failing spec reproduces from its seed alone.
func GenWorkloadSpec(seed int64) workload.Spec {
	rng := rand.New(rand.NewSource(seed))
	s := workload.Spec{
		Proto:    []workload.Proto{workload.ProtoRPC, workload.ProtoKV, workload.ProtoStream}[rng.Intn(3)],
		Mode:     []workload.Mode{workload.ModeOpen, workload.ModeClosed}[rng.Intn(2)],
		Seed:     rng.Int63(),
		Clients:  1 + rng.Intn(6),
		Ops:      10 + rng.Intn(90),
		Rate:     float64(2000 * (1 + rng.Intn(10))),
		Think:    time.Duration(1+rng.Intn(3)) * time.Millisecond,
		Pipeline: 1 + rng.Intn(4),
		ValBytes: []int{32, 128, 256, 1024}[rng.Intn(4)],
		Chunks:   1 + rng.Intn(6),
		GetFrac:  []float64{0.25, 0.5, 0.9}[rng.Intn(3)],
	}
	return s
}
