package proptest

import (
	"bytes"
	"fmt"
	"testing"

	"sanft/internal/trace"
)

// RequireDeterministic runs dump twice with the same seed and fails t if
// the outputs differ byte for byte. dump should rebuild its entire world
// from the seed (cluster, workload, exporters) and return every observable
// it cares about — metrics dumps, trace timelines, report text. Any
// map-iteration leak, stray time.Now, or global-RNG use shows up as a diff.
func RequireDeterministic(t testing.TB, seed int64, dump func(seed int64) []byte) {
	t.Helper()
	a := dump(seed)
	b := dump(seed)
	if bytes.Equal(a, b) {
		return
	}
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(la) && i < len(lb); i++ {
		if !bytes.Equal(la[i], lb[i]) {
			t.Fatalf("seed %d: two runs diverged at line %d:\n  run 1: %s\n  run 2: %s",
				seed, i+1, la[i], lb[i])
		}
	}
	t.Fatalf("seed %d: two runs diverged in length: %d vs %d bytes (%d vs %d lines)",
		seed, len(a), len(b), len(la), len(lb))
}

// SimDump renders one simulator scenario's full observable state as text:
// the outcome summary, every violation, and the flight-recorder timeline.
// Designed as the dump argument to RequireDeterministic.
func SimDump(seed int64) []byte {
	res := RunSim(GenSim(seed))
	var b bytes.Buffer
	fmt.Fprintf(&b, "scenario %d: %s\n", seed, res.Summary())
	for _, v := range res.Violations {
		fmt.Fprintf(&b, "violation: %s\n", v)
	}
	if res.Recorder != nil {
		if err := trace.WriteTimeline(&b, res.Recorder.Ring().Events()); err != nil {
			fmt.Fprintf(&b, "timeline error: %v\n", err)
		}
	}
	return b.Bytes()
}
