package proptest

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestLockstepExplore runs the differential checker over a swarm of random
// schedules: the implementation must agree with the reference model on
// every observable, and every schedule must drain.
func TestLockstepExplore(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 300
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		if div := RunLockstep(GenOps(seed), MutNone); div != nil {
			min := ShrinkOps(GenOps(seed), MutNone)
			t.Fatalf("seed %d: %v\nshrunk repro:\n%s", seed, div, FormatOps(min, MutNone))
		}
	}
}

// TestLockstepDeterministic replays one schedule twice and demands the
// identical outcome, divergence or not.
func TestLockstepDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		sc := GenOps(seed)
		a := RunLockstep(sc, MutNone)
		b := RunLockstep(sc, MutNone)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two runs disagreed: %v vs %v", seed, a, b)
		}
	}
}

// TestGenDeterministic: same seed, same scenario — the whole repro story
// rests on this.
func TestGenDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		if a, b := GenOps(seed), GenOps(seed); !reflect.DeepEqual(a, b) {
			t.Fatalf("GenOps(%d) not deterministic", seed)
		}
		if a, b := GenSim(seed), GenSim(seed); !reflect.DeepEqual(a, b) {
			t.Fatalf("GenSim(%d) not deterministic", seed)
		}
	}
}

// TestInjectedAckBeforeCommitCaught proves the checker's teeth: a seeded
// ack-before-commit bug must be detected and shrink to a tiny schedule.
func TestInjectedAckBeforeCommitCaught(t *testing.T) {
	sc := GenOps(1)
	div := RunLockstep(sc, MutAckEager)
	if div == nil {
		t.Fatal("ack-before-commit mutation not detected on seed 1")
	}
	min := ShrinkOps(sc, MutAckEager)
	if got := RunLockstep(min, MutAckEager); got == nil {
		t.Fatal("shrunk scenario no longer fails")
	} else if got.Kind != "ack-emission" {
		t.Fatalf("shrunk divergence kind = %q, want ack-emission: %v", got.Kind, got)
	}
	if len(min.Ops) > 3 {
		t.Fatalf("shrunk to %d ops, want ≤ 3:\n%s", len(min.Ops), FormatOps(min, MutAckEager))
	}
}

// TestInjectedAcceptOOOCaught does the same for the FIFO-violation bug.
func TestInjectedAcceptOOOCaught(t *testing.T) {
	// A schedule guaranteed to create a gap frame: two sends, lose the
	// first in transit, deliver the second.
	sc := OpScenario{
		QueueSize: 4, Dests: 1,
		Ops: []Op{{OpSend, 0}, {OpSend, 0}, {OpDropWire, 0}},
	}
	div := RunLockstep(sc, MutAcceptOOO)
	if div == nil {
		t.Fatal("accept-out-of-order mutation not detected")
	}
	if div.Kind != "delivery" {
		t.Fatalf("divergence kind = %q, want delivery: %v", div.Kind, div)
	}
	min := ShrinkOps(sc, MutAcceptOOO)
	if len(min.Ops) > 3 {
		t.Fatalf("shrunk to %d ops, want ≤ 3", len(min.Ops))
	}
}

// TestShrinkSlice checks the delta-debugging minimizer on a known target.
func TestShrinkSlice(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	// Failure requires both 3 and 7, in that order.
	fails := func(s []int) bool {
		i3 := -1
		for i, v := range s {
			if v == 3 {
				i3 = i
			}
			if v == 7 && i3 >= 0 {
				return true
			}
		}
		return false
	}
	got := shrinkSlice(items, fails)
	if !reflect.DeepEqual(got, []int{3, 7}) {
		t.Fatalf("shrunk to %v, want [3 7]", got)
	}
	if one := shrinkSlice([]int{5}, func(s []int) bool { return true }); len(one) != 0 {
		t.Fatalf("always-failing singleton shrunk to %v, want empty", one)
	}
}

// TestCorpusRoundTrip: format → parse is the identity for both formats.
func TestCorpusRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		sc := GenOps(seed)
		got, mut, err := ParseOps(FormatOps(sc, MutAckEager))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if mut != MutAckEager || !reflect.DeepEqual(got, sc) {
			t.Fatalf("seed %d: lockstep round trip mismatch:\n%+v\n%+v", seed, sc, got)
		}
		ss := GenSim(seed)
		gotSim, err := ParseSim(FormatSim(ss))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(gotSim, ss) {
			t.Fatalf("seed %d: sim round trip mismatch:\n%+v\n%+v", seed, ss, gotSim)
		}
	}
}

// TestOpsFromBytes: every byte string decodes to a runnable scenario.
func TestOpsFromBytes(t *testing.T) {
	inputs := [][]byte{nil, {0}, {255}, {0, 0}, {7, 3, 200, 13, 0, 255, 90}}
	for _, in := range inputs {
		sc := OpsFromBytes(in)
		if sc.QueueSize < 1 || sc.Dests < 1 {
			t.Fatalf("input %v: invalid scenario %+v", in, sc)
		}
		if div := RunLockstep(sc, MutNone); div != nil {
			t.Fatalf("input %v: clean protocol diverged: %v", in, div)
		}
	}
}

// TestSimExplore runs full-simulator scenarios — random topology, faults,
// workload — and requires every protocol property to hold. On failure it
// shrinks and writes triage artifacts before reporting.
func TestSimExplore(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 25
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		res := RunSim(GenSim(seed))
		if res.Failed() {
			min := ShrinkSim(res.Scenario)
			dir := t.TempDir()
			path, _ := WriteFailureArtifacts(dir, "failure", RunSim(min))
			t.Fatalf("seed %d failed: %v\nshrunk repro (%s):\n%s",
				seed, res.Violations, path, FormatSim(min))
		}
	}
}

// TestSimDeterministic replays one full scenario twice and compares every
// observable byte for byte, via the shared helper the rest of the test
// suite uses.
func TestSimDeterministic(t *testing.T) {
	RequireDeterministic(t, 7, SimDump)
	if !testing.Short() {
		RequireDeterministic(t, 23, SimDump)
	}
}

// TestCorpusRegressions replays every committed corpus file. Lockstep files
// carrying a mutation must still be caught; clean files and sim scenarios
// must pass — they are pinned repros of bugs since fixed (or of checker
// capabilities that must not rot).
func TestCorpusRegressions(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "proptest")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("corpus dir: %v", err)
	}
	ran := 0
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case strings.HasSuffix(ent.Name(), ".ops"):
			sc, mut, err := ParseOps(data)
			if err != nil {
				t.Fatalf("%s: %v", ent.Name(), err)
			}
			div := RunLockstep(sc, mut)
			if mut != MutNone && div == nil {
				t.Errorf("%s: mutation %v no longer caught", ent.Name(), mut)
			}
			if mut == MutNone && div != nil {
				t.Errorf("%s: clean scenario diverges: %v", ent.Name(), div)
			}
			ran++
		case strings.HasSuffix(ent.Name(), ".sim"):
			sc, err := ParseSim(data)
			if err != nil {
				t.Fatalf("%s: %v", ent.Name(), err)
			}
			if res := RunSim(sc); res.Failed() {
				t.Errorf("%s: regression scenario fails again: %v", ent.Name(), res.Violations)
			}
			ran++
		}
	}
	if ran == 0 {
		t.Fatal("no corpus files found")
	}
}

// TestStaleMapOracleExercised replays the pinned stale-map corpus scenario
// and requires it to actually open a blind window that holds recovery
// triggers — otherwise the stale-map oracle (held triggers must replay
// into remap attempts) is never on the hook and the pin proves nothing.
func TestStaleMapOracleExercised(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "proptest", "stalemap-chain.sim"))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ParseSim(data)
	if err != nil {
		t.Fatal(err)
	}
	res := RunSim(sc)
	if res.Failed() {
		t.Fatalf("pinned stale-map scenario fails: %v", res.Violations)
	}
	if res.StaleHeld == 0 {
		t.Fatal("pinned stale-map scenario held no recovery triggers — blind window never bit")
	}
	if res.Delivered != res.Expected {
		t.Fatalf("delivered %d of %d after the blind window", res.Delivered, res.Expected)
	}
}

// TestWriteFailureArtifacts exercises the triage-dump path on a passing
// run (artifact writing must not depend on failure).
func TestWriteFailureArtifacts(t *testing.T) {
	res := RunSim(GenSim(3))
	dir := t.TempDir()
	path, err := WriteFailureArtifacts(dir, "case", res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ParseSim(back)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, res.Scenario) {
		t.Fatal("artifact corpus file does not round trip")
	}
	for _, suffix := range []string{".txt", ".timeline", ".perfetto.json"} {
		if _, err := os.Stat(filepath.Join(dir, "case"+suffix)); err != nil {
			t.Fatalf("missing artifact %s: %v", suffix, err)
		}
	}
}
