// Package proptest is the property-based simulation-testing harness: seed-
// driven generators for protocol schedules, topologies, faults, and
// workloads; a pure reference model of the retransmission protocol run in
// lockstep against the real implementation; automatic shrinking of failures
// to minimal repros; and corpus encoding for fuzzing and regression files.
//
// Everything derives from a single int64 seed, so any failure is a one-line
// repro: `go run ./cmd/sanprop -replay <seed>`.
package proptest

import (
	"time"

	"sanft/internal/proto"
	"sanft/internal/sim"
)

// The reference model below restates the protocol rules of internal/retrans
// from the paper's specification (§4.1–4.2), independently of that package's
// code: per-destination sequence generations, cumulative acks, go-back-N
// retransmission, sender-based ack-request feedback, and drop-don't-buffer
// reception. The lockstep harness drives both and reports any divergence.
// The model deliberately stores only value types — no pointers into the real
// implementation — so a divergence can never be masked by shared state.

// refEntry is one unacknowledged packet in the model's retransmission queue.
type refEntry struct {
	gen      uint32
	seq      uint64
	lastSent sim.Time
}

// refDest is the model's per-destination send state.
type refDest struct {
	gen         uint32
	nextSeq     uint64
	queue       []refEntry
	sinceAckReq int
	unreachable bool
}

// refRecv is the model's per-source receive state: the paper's receivers
// buffer nothing, so this is just (generation, next expected, ack owed).
type refRecv struct {
	gen      uint32
	expected uint64
	pending  bool
}

// refModel is the abstract protocol machine for one sender and its
// destinations' receivers.
type refModel struct {
	queueSize   int
	ackEveryDiv int
	interval    time.Duration // retransmission timer period

	dests map[int]*refDest
	rcvs  map[int]*refRecv
}

func newRefModel(queueSize int, interval time.Duration) *refModel {
	return &refModel{
		queueSize:   queueSize,
		ackEveryDiv: 4,
		interval:    interval,
		dests:       make(map[int]*refDest),
		rcvs:        make(map[int]*refRecv),
	}
}

func (m *refModel) dest(d int) *refDest {
	ds := m.dests[d]
	if ds == nil {
		ds = &refDest{}
		m.dests[d] = ds
	}
	return ds
}

func (m *refModel) recv(d int) *refRecv {
	rs := m.rcvs[d]
	if rs == nil {
		rs = &refRecv{}
		m.rcvs[d] = rs
	}
	return rs
}

// free returns the number of free send buffers: the queue is shared across
// destinations and every queued entry holds one buffer.
func (m *refModel) free() int {
	used := 0
	for _, ds := range m.dests {
		used += len(ds.queue)
	}
	return m.queueSize - used
}

// prepare assigns the next (generation, sequence) for a packet to d and
// queues it. Sending to a destination clears its unreachable label.
func (m *refModel) prepare(d int, now sim.Time) (gen uint32, seq uint64) {
	ds := m.dest(d)
	ds.unreachable = false
	gen, seq = ds.gen, ds.nextSeq
	ds.nextSeq++
	ds.queue = append(ds.queue, refEntry{gen: gen, seq: seq, lastSent: now})
	return gen, seq
}

// ackLevel is the sender-based feedback rule (§4.1.2): nearly out of
// buffers → immediate; moderate pressure → delayed; plenty → delayed every
// K-th packet.
func (m *refModel) ackLevel(d, freeBuffers int) proto.AckLevel {
	ds := m.dest(d)
	q := m.queueSize
	switch {
	case freeBuffers*4 <= q:
		ds.sinceAckReq = 0
		return proto.AckImmediate
	case freeBuffers*4 <= 3*q:
		ds.sinceAckReq = 0
		return proto.AckDelayed
	default:
		ds.sinceAckReq++
		k := q / m.ackEveryDiv
		if k < 1 {
			k = 1
		}
		if ds.sinceAckReq >= k {
			ds.sinceAckReq = 0
			return proto.AckDelayed
		}
		return proto.AckNone
	}
}

// onData classifies a data frame arriving at d's receiver: in-order frames
// are accepted, duplicates re-acknowledged immediately, gaps and stale
// generations dropped without buffering (§4.1.1, §4.2).
func (m *refModel) onData(d int, gen uint32, seq uint64, req proto.AckLevel) (accept, ackNow, armDelayed bool) {
	rs := m.recv(d)
	if gen < rs.gen {
		return false, false, false
	}
	if gen > rs.gen {
		rs.gen = gen
		rs.expected = 0
		rs.pending = false
	}
	switch {
	case seq == rs.expected:
		rs.expected++
		rs.pending = true
		return true, req == proto.AckImmediate, req == proto.AckDelayed
	case seq < rs.expected:
		rs.pending = true
		return false, true, false
	default:
		return false, false, false
	}
}

// cumack returns d's cumulative acknowledgment: every sequence ≤ seq of
// generation gen has been committed. ok is false before anything has been
// accepted in the current generation.
func (m *refModel) cumack(d int) (gen uint32, seq uint64, ok bool) {
	rs := m.rcvs[d]
	if rs == nil || rs.expected == 0 {
		return 0, 0, false
	}
	return rs.gen, rs.expected - 1, true
}

// ackEmitted clears the receiver's ack-owed flag.
func (m *refModel) ackEmitted(d int) {
	if rs := m.rcvs[d]; rs != nil {
		rs.pending = false
	}
}

// onAck frees every queued entry of the matching generation with sequence
// ≤ ackSeq; stale-generation acks free nothing.
func (m *refModel) onAck(d int, ackGen uint32, ackSeq uint64) (freed int) {
	ds := m.dests[d]
	if ds == nil || ackGen != ds.gen {
		return 0
	}
	i := 0
	for i < len(ds.queue) && ds.queue[i].seq <= ackSeq {
		i++
	}
	ds.queue = ds.queue[i:]
	return i
}

// refBatch is one go-back-N retransmission burst.
type refBatch struct {
	dst     int
	entries []refEntry
}

// tick runs the periodic retransmission timer: any destination whose oldest
// packet has waited at least one interval resends its whole queue in order.
// Destinations fire in ascending ID order.
func (m *refModel) tick(now sim.Time) []refBatch {
	var out []refBatch
	for _, d := range sortedKeys(m.dests) {
		ds := m.dests[d]
		if len(ds.queue) == 0 || ds.unreachable {
			continue
		}
		if now.Sub(ds.queue[0].lastSent) < m.interval {
			continue
		}
		entries := make([]refEntry, len(ds.queue))
		for i := range ds.queue {
			ds.queue[i].lastSent = now
			entries[i] = ds.queue[i]
		}
		out = append(out, refBatch{dst: d, entries: entries})
	}
	return out
}

// reset starts a new generation for d after a remap (§4.2): queued packets
// renumber from zero under the new generation. The returned entries carry
// lastSent = now because the harness retransmits them immediately.
func (m *refModel) reset(d int, now sim.Time) []refEntry {
	ds := m.dest(d)
	ds.gen++
	ds.nextSeq = uint64(len(ds.queue))
	ds.sinceAckReq = 0
	ds.unreachable = false
	for i := range ds.queue {
		ds.queue[i].gen = ds.gen
		ds.queue[i].seq = uint64(i)
		ds.queue[i].lastSent = now
	}
	return append([]refEntry(nil), ds.queue...)
}

// markUnreachable drops every pending packet for d and labels it
// unreachable. A destination never sent to has no state to label — the
// model mirrors the implementation's early return there, including the
// absent unreachable flag.
func (m *refModel) markUnreachable(d int) (dropped int) {
	ds := m.dests[d]
	if ds == nil {
		return 0
	}
	dropped = len(ds.queue)
	ds.queue = nil
	ds.unreachable = true
	return dropped
}

// unacked returns the number of queued entries for d.
func (m *refModel) unacked(d int) int {
	if ds := m.dests[d]; ds != nil {
		return len(ds.queue)
	}
	return 0
}

func sortedKeys[V any](m map[int]*V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Insertion sort: key sets here are tiny (a handful of destinations).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
