package proptest

import (
	"fmt"
	"math/rand"
	"time"

	"sanft/internal/topology"
)

// TopoKind selects a topology family for a generated scenario.
type TopoKind uint8

const (
	// TopoStar: n hosts on one switch — no trunks, pure endpoint stress.
	TopoStar TopoKind = iota
	// TopoChain: k switches in a row, Width parallel trunks between
	// neighbors; Width 1 makes every trunk a single point of failure.
	TopoChain
	// TopoRing: k switches in a cycle — redundant paths both ways around.
	TopoRing
	// TopoDoubleStar: two switches, every host dual-homed.
	TopoDoubleStar
	// TopoRandom: irregular switch graph with biased degree.
	TopoRandom
	// TopoFatTree: a small 3-tier Clos (k=2 or 4) — hostless aggregation
	// and core tiers, the mapper's hardest dedup case.
	TopoFatTree
	// TopoDragonfly: a small dragonfly — local meshes plus global links.
	TopoDragonfly
	// TopoTorus: a small 2D torus — wraparound rings, no hostless tier.
	TopoTorus

	numTopoKinds
)

var topoNames = [...]string{"star", "chain", "ring", "double-star", "random",
	"fattree", "dragonfly", "torus"}

func (k TopoKind) String() string {
	if int(k) < len(topoNames) {
		return topoNames[k]
	}
	return fmt.Sprintf("topo(%d)", uint8(k))
}

// TopoSpec is a buildable topology description. Fields are interpreted per
// kind and clamped to each builder's legal range, so every spec builds.
type TopoSpec struct {
	Kind     TopoKind
	Hosts    int   // hosts total (star/double-star/random) or per switch
	Switches int   // switch count where the family has one
	Width    int   // parallel trunks (chain)
	Seed     int64 // wiring seed (random)
}

// Build realizes the spec into a network and its host list.
func (ts TopoSpec) Build() (*topology.Network, []topology.NodeID) {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	switch ts.Kind {
	case TopoChain:
		k := clamp(ts.Switches, 2, 4)
		per := clamp(ts.Hosts, 1, 3)
		width := clamp(ts.Width, 1, 2)
		nw, rows := topology.Chain(k, per, width)
		return nw, flatten(rows)
	case TopoRing:
		k := clamp(ts.Switches, 3, 5)
		per := clamp(ts.Hosts, 1, 2)
		nw, rows := topology.Ring(k, per)
		return nw, flatten(rows)
	case TopoDoubleStar:
		return topology.DoubleStar(clamp(ts.Hosts, 2, 8))
	case TopoRandom:
		return topology.Random(clamp(ts.Hosts, 2, 6), clamp(ts.Switches, 2, 4), 8, 3.0, ts.Seed)
	case TopoFatTree:
		// k must be even; 2 or 4 keeps scenarios fast (2 or 16 hosts).
		k := 2 + 2*(clamp(ts.Switches, 2, 3)-2)
		ft := topology.FatTree(k)
		return ft.Net, ft.Hosts
	case TopoDragonfly:
		d := topology.Dragonfly(clamp(ts.Switches, 1, 2), clamp(ts.Hosts, 1, 2), 1)
		return d.Net, d.Hosts
	case TopoTorus:
		tr := topology.Torus(clamp(ts.Hosts, 1, 2), clamp(ts.Switches, 2, 3), clamp(ts.Width, 2, 3))
		return tr.Net, tr.Hosts
	default:
		return topology.Star(clamp(ts.Hosts, 2, 8))
	}
}

func flatten(rows [][]topology.NodeID) []topology.NodeID {
	var out []topology.NodeID
	for _, row := range rows {
		out = append(out, row...)
	}
	return out
}

// FaultKind selects one injected failure.
type FaultKind uint8

const (
	// FaultLinkFlap kills a trunk link and restores it after Dur.
	FaultLinkFlap FaultKind = iota
	// FaultLinkKill kills a trunk link permanently.
	FaultLinkKill
	// FaultSwitchFlap kills a switch and restores it after Dur.
	FaultSwitchFlap
	// FaultDropBurst injects send-side drops at Rate on one host for Dur.
	FaultDropBurst
	// FaultStaleMap suspends one host's failure recovery for Dur: the host
	// keeps routing on its pre-failure map while triggers are held, then
	// replays them on resume. The oracle proves delivery converges after
	// the blind window ends.
	FaultStaleMap

	numFaultKinds
)

var faultNames = [...]string{"link-flap", "link-kill", "switch-flap", "drop-burst",
	"stale-map"}

func (k FaultKind) String() string {
	if int(k) < len(faultNames) {
		return faultNames[k]
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// FaultEvent is one scheduled failure. Index selects the victim modulo the
// candidate set at install time, so any event is valid on any topology
// (events with no candidates — a trunk fault on a star — are no-ops).
type FaultEvent struct {
	Kind  FaultKind
	At    time.Duration
	Dur   time.Duration
	Index int
	Rate  float64 // drop-burst only
}

func (f FaultEvent) String() string {
	return fmt.Sprintf("%s@%v idx=%d dur=%v rate=%g", f.Kind, f.At, f.Index, f.Dur, f.Rate)
}

// SimScenario is a complete simulator-level test case: a topology, a fault
// schedule, and a workload. Everything the run does derives from these
// fields plus Seed.
type SimScenario struct {
	Seed   int64
	Topo   TopoSpec
	Faults []FaultEvent
	Pairs  int // directed traffic pairs, drawn deterministically from Seed
	Msgs   int // messages per pair
	Bytes  int // message size
	Gap    time.Duration
}

// GenSim derives a simulator scenario from a single seed.
func GenSim(seed int64) SimScenario {
	rng := rand.New(rand.NewSource(seed))
	sc := SimScenario{
		Seed: seed,
		Topo: TopoSpec{
			Kind:     TopoKind(rng.Intn(int(numTopoKinds))),
			Hosts:    1 + rng.Intn(6),
			Switches: 2 + rng.Intn(3),
			Width:    1 + rng.Intn(2),
			Seed:     rng.Int63(),
		},
		Pairs: 1 + rng.Intn(6),
		Msgs:  2 + rng.Intn(5),
		Bytes: []int{128, 512, 1024}[rng.Intn(3)],
		Gap:   time.Duration(100+rng.Intn(400)) * time.Microsecond,
	}
	nFaults := rng.Intn(4)
	for i := 0; i < nFaults; i++ {
		f := FaultEvent{
			Kind:  FaultKind(rng.Intn(int(numFaultKinds))),
			At:    time.Duration(rng.Intn(20)) * time.Millisecond,
			Dur:   time.Duration(1+rng.Intn(15)) * time.Millisecond,
			Index: rng.Intn(8),
		}
		if f.Kind == FaultDropBurst {
			f.Rate = []float64{0.01, 0.05, 0.2}[rng.Intn(3)]
		}
		sc.Faults = append(sc.Faults, f)
	}
	return sc
}

// pairList draws sc.Pairs directed pairs from hosts, deterministically from
// sc.Seed. The draw is prefix-stable: shrinking Pairs keeps a prefix of the
// same pair sequence.
func (sc SimScenario) pairList(hosts []topology.NodeID) []pairKey {
	if len(hosts) < 2 {
		return nil
	}
	rng := rand.New(rand.NewSource(sc.Seed ^ 0x9a175))
	var out []pairKey
	seen := make(map[pairKey]bool)
	// Bounded rejection sampling: with few hosts the distinct-pair space
	// can be smaller than Pairs, so cap the draws rather than demanding
	// the full count.
	for tries := 0; len(out) < sc.Pairs && tries < 64*sc.Pairs+64; tries++ {
		p := pairKey{hosts[rng.Intn(len(hosts))], hosts[rng.Intn(len(hosts))]}
		if p.src == p.dst || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

type pairKey struct {
	src, dst topology.NodeID
}
