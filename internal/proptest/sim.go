package proptest

import (
	"fmt"
	"time"

	"sanft/internal/chaos"
	"sanft/internal/core"
	"sanft/internal/fabric"
	"sanft/internal/fault"
	"sanft/internal/retrans"
	"sanft/internal/trace"
)

// SimResult is the verdict of one simulator-level scenario.
type SimResult struct {
	Scenario SimScenario
	// Violations holds chaos-invariant failures plus the proptest oracle's
	// own findings (per-pair delivery, FIFO ordering, drain).
	Violations []string
	Delivered  int
	Expected   int
	// UnreachablePairs counts traffic pairs waived from the delivery check
	// because the sender declared the destination unreachable.
	UnreachablePairs int
	// StaleHeld counts recovery triggers held during stale-map blind
	// windows (the remap.held counter); the stale-map oracle requires any
	// held trigger to replay into a remap attempt after resume.
	StaleHeld int
	// Recorder holds the run's flight recorder, for artifact dumps.
	Recorder *trace.FlightRecorder
}

// Failed reports whether the scenario violated any property.
func (r *SimResult) Failed() bool { return len(r.Violations) > 0 }

// Summary is a one-line description of the outcome.
func (r *SimResult) Summary() string {
	if !r.Failed() {
		return fmt.Sprintf("ok: %d/%d delivered, %d unreachable pairs",
			r.Delivered, r.Expected, r.UnreachablePairs)
	}
	return fmt.Sprintf("FAIL (%d violations): %s", len(r.Violations), r.Violations[0])
}

// unreachWatch tees trace events to the flight recorder while collecting
// the (src, dst) pairs the protocol declared unreachable — exactly the
// pairs whose message loss the paper's contract permits.
type unreachWatch struct {
	inner trace.Tracer
	pairs map[pairKey]bool
}

func (u *unreachWatch) Trace(e trace.Event) {
	if e.Kind == trace.EvUnreachable {
		u.pairs[pairKey{e.Node, e.Peer}] = true
	}
	u.inner.Trace(e)
}

// schedule adapts a generated fault list to the chaos engine. Victims are
// chosen by Index modulo the candidate set; a fault class with no
// candidates on this topology is a no-op, keeping every schedule valid on
// every topology (a shrinking prerequisite).
type schedule struct {
	faults []FaultEvent
	seed   int64
}

func (s schedule) ScenarioName() string { return "proptest" }

func (s schedule) Install(e *chaos.Engine) {
	trunks := chaos.TrunkLinks(e.C.Net)
	switches := e.C.Net.Switches()
	for fi, f := range s.faults {
		fi, f := fi, f
		switch f.Kind {
		case FaultLinkFlap, FaultLinkKill:
			if len(trunks) == 0 {
				continue
			}
			l := trunks[f.Index%len(trunks)]
			e.C.K.After(f.At, func() {
				e.RecordFault("proptest %s %s", f.Kind, chaos.LinkName(e.C.Net, l))
				e.C.Fab.KillLink(l)
				if f.Kind == FaultLinkFlap {
					e.C.K.After(f.Dur, func() {
						e.Record("proptest heal %s", chaos.LinkName(e.C.Net, l))
						e.C.Net.RestoreLink(l)
					})
				}
			})
		case FaultSwitchFlap:
			if len(switches) == 0 {
				continue
			}
			sw := switches[f.Index%len(switches)]
			e.C.K.After(f.At, func() {
				e.RecordFault("proptest switch-flap %s", e.C.Net.Node(sw).Name)
				e.C.Fab.KillSwitch(sw)
				e.C.K.After(f.Dur, func() {
					e.Record("proptest restore %s", e.C.Net.Node(sw).Name)
					e.C.Net.RestoreSwitch(sw)
				})
			})
		case FaultDropBurst:
			h := e.C.Hosts[f.Index%len(e.C.Hosts)]
			e.C.K.After(f.At, func() {
				e.RecordFault("proptest drop-burst rate=%g host %d", f.Rate, h)
				e.C.NIC(h).SetDropper(fault.NewRateSeeded(f.Rate,
					s.seed*65537+int64(h)*2654435761+int64(fi)*40503))
				e.C.K.After(f.Dur, func() {
					e.Record("proptest drop-burst end host %d", h)
					e.C.NIC(h).SetDropper(nil)
				})
			})
		case FaultStaleMap:
			h := e.C.Hosts[f.Index%len(e.C.Hosts)]
			e.C.K.After(f.At, func() {
				e.RecordFault("proptest stale-map host %d blind for %v", h, f.Dur)
				e.C.SuspendRemap(h)
				e.C.K.After(f.Dur, func() {
					e.Record("proptest stale-map end host %d", h)
					e.C.ResumeRemap(h)
				})
			})
		}
	}
}

// simRecovery paces recovery aggressively so scenarios quiesce within the
// drain window: short retransmission interval, fast permanent-failure
// detection, quick remap backoff and quarantine cycling, and a short
// wormhole watchdog.
func simRecovery() (retrans.Config, core.RemapPolicy, fabric.Config) {
	rc := retrans.Config{
		QueueSize:         16,
		Interval:          time.Millisecond,
		PermFailThreshold: 6 * time.Millisecond,
	}
	pol := core.RemapPolicy{
		Backoff:         time.Millisecond,
		BackoffMax:      8 * time.Millisecond,
		JitterFrac:      0.25,
		QuarantineAfter: 3,
		Quarantine:      10 * time.Millisecond,
		QuarantineMax:   40 * time.Millisecond,
	}
	fcfg := fabric.DefaultConfig()
	fcfg.Watchdog = 3 * time.Millisecond
	return rc, pol, fcfg
}

// RunSim executes one simulator-level scenario and checks every property.
func RunSim(sc SimScenario) *SimResult {
	return RunSimWith(sc, nil)
}

// RunSimWith is RunSim with a hook invoked after the engine is built and
// faults are installed but before traffic starts — used by tests that need
// extra instrumentation on the same deterministic run.
func RunSimWith(sc SimScenario, pre func(*chaos.Engine)) *SimResult {
	res := &SimResult{Scenario: sc}
	nw, hosts := sc.Topo.Build()
	if len(hosts) < 2 {
		return res
	}
	rc, pol, fcfg := simRecovery()
	fr := trace.NewFlightRecorder(4096)
	watch := &unreachWatch{inner: fr, pairs: make(map[pairKey]bool)}
	c := core.New(core.Config{
		Net:     nw,
		Hosts:   hosts,
		FT:      true,
		Retrans: rc,
		Mapper:  true,
		Remap:   pol,
		Fabric:  fcfg,
		Tracer:  watch,
		Seed:    sc.Seed,
	})
	res.Recorder = fr
	e := chaos.NewEngine(c, sc.Seed)
	e.Install(schedule{faults: sc.Faults, seed: sc.Seed})
	if pre != nil {
		pre(e)
	}

	pairs := sc.pairList(hosts)
	if len(pairs) == 0 {
		return res
	}
	wpairs := make([]chaos.Pair, len(pairs))
	for i, p := range pairs {
		wpairs[i] = chaos.Pair{Src: p.src, Dst: p.dst}
	}
	// FIFO-ordering oracle: per pair, notification message IDs must be
	// strictly increasing — retransmission, generation resets, and remaps
	// may lose messages (to unreachable peers) but never reorder them.
	lastID := make(map[chaos.Pair]uint64)
	seenID := make(map[chaos.Pair]bool)
	w := chaos.Workload{
		Pairs: wpairs,
		Msgs:  sc.Msgs,
		Bytes: sc.Bytes,
		Gap:   sc.Gap,
		OnNotify: func(p chaos.Pair, id uint64) {
			if seenID[p] && id <= lastID[p] {
				res.Violations = append(res.Violations, fmt.Sprintf(
					"ordering: pair %d->%d notified message %d after %d", p.Src, p.Dst, id, lastID[p]))
			}
			lastID[p] = id
			seenID[p] = true
		},
	}
	run := w.Start(e)

	// Run until every fault has struck and healed and the workload has had
	// time to send, then drain: long enough for the timer-driven recovery
	// machinery (retransmit → stale-path → remap → quarantine) to settle.
	var horizon time.Duration
	for _, f := range sc.Faults {
		if end := f.At + f.Dur; end > horizon {
			horizon = end
		}
	}
	if sendSpan := time.Duration(sc.Msgs)*sc.Gap + time.Millisecond; sendSpan > horizon {
		horizon = sendSpan
	}
	c.RunFor(horizon + 2*time.Second)
	c.Stop()

	for _, v := range chaos.CheckInvariants(e, run, chaos.CheckOpts{AllowLoss: true}) {
		res.Violations = append(res.Violations, v.String())
	}

	// Stale-map oracle: triggers held during a blind window must replay
	// into real remap attempts once the window closes — a host that holds
	// recovery requests and then drops them on resume would pass the
	// delivery check only by luck (when the pre-failure map still works).
	res.StaleHeld = int(c.Metrics().CounterTotal("remap.held"))
	if res.StaleHeld > 0 && c.Metrics().CounterTotal("remap.attempts") == 0 {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"stale-map: %d triggers held in the blind window but no remap attempt after resume",
			res.StaleHeld))
	}

	// Per-pair delivery: loss is only legal toward destinations the sender
	// explicitly declared unreachable — the paper's graceful-degradation
	// contract. Everything else must arrive in full.
	res.Expected = run.Expected()
	res.Delivered = run.Delivered()
	sawUnreach := len(watch.pairs) > 0
	for _, pr := range wpairs {
		if watch.pairs[pairKey{pr.Src, pr.Dst}] {
			res.UnreachablePairs++
			continue
		}
		if got := len(run.Counts[pr]); got != sc.Msgs {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"delivery: pair %d->%d delivered %d of %d with no unreachable verdict",
				pr.Src, pr.Dst, got, sc.Msgs))
		}
	}
	// With no unreachable verdict anywhere, every send buffer must have
	// drained back to free (the AllowLoss invariant pass skips this).
	if !sawUnreach {
		for _, h := range hosts {
			if snd := c.NIC(h).ProtoSender(); snd != nil {
				if u := snd.TotalUnacked(); u != 0 {
					res.Violations = append(res.Violations, fmt.Sprintf(
						"drain: host %d holds %d unacked packets with no unreachable verdict", h, u))
				}
			}
		}
	}
	return res
}
