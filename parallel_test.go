package sanft

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"sanft/internal/chaos"
	"sanft/internal/parsim"
	"sanft/internal/proptest"
	"sanft/internal/topology"
)

// gateFlows picks cross-switch flows on the Fig. 2 testbed: every pair
// crosses at least one trunk, so the link-flap schedule actually bites.
func gateFlows(f *topology.Fig2) []Flow {
	var flows []Flow
	// S0 hosts to S1/S2/S3 hosts and back — 12 directed flows.
	flows = append(flows,
		Flow{Src: f.HostsAt[0][0], Dst: f.HostsAt[1][0]},
		Flow{Src: f.HostsAt[1][0], Dst: f.HostsAt[0][0]},
		Flow{Src: f.HostsAt[0][1], Dst: f.HostsAt[2][0]},
		Flow{Src: f.HostsAt[2][0], Dst: f.HostsAt[0][1]},
		Flow{Src: f.HostsAt[0][2], Dst: f.HostsAt[3][0]},
		Flow{Src: f.HostsAt[3][0], Dst: f.HostsAt[0][2]},
		Flow{Src: f.HostsAt[1][1], Dst: f.HostsAt[2][1]},
		Flow{Src: f.HostsAt[2][1], Dst: f.HostsAt[1][1]},
		Flow{Src: f.HostsAt[1][2], Dst: f.HostsAt[3][1]},
		Flow{Src: f.HostsAt[3][1], Dst: f.HostsAt[1][2]},
		Flow{Src: f.HostsAt[0][3], Dst: f.HostsAt[1][3]},
		Flow{Src: f.HostsAt[2][2], Dst: f.HostsAt[3][2]},
	)
	return flows
}

// gateDump runs the reference parallel scenario — Fig. 2 topology, a
// link-flap schedule on two trunks, 12 cross-switch retransmitting flows
// — with the given worker count, and renders every observable output:
// merged delivery order, metrics summary + JSONL, Perfetto export, and
// each shard's post-run RNG state.
func gateDump(t testing.TB, seed int64, workers int, extra ...Option) []byte {
	t.Helper()
	f := NewFig2()
	opts := []Option{
		WithTopology(f.Net, nil),
		WithSeed(seed),
		WithRetrans(RetransConfig{
			QueueSize:         16,
			Interval:          time.Millisecond,
			PermFailThreshold: 50 * time.Millisecond,
		}),
		WithFaultTolerance(),
		WithEngine(EngineSharded),
		WithWorkers(workers),
	}
	s := New(append(opts, extra...)...)
	// Flap two distinct trunks while traffic is in flight: packets die on
	// dead links mid-run and the retransmission protocol recovers them.
	s.FlapTrunk(0, 2*time.Millisecond, 3*time.Millisecond)
	s.FlapTrunk(2, 4*time.Millisecond, 2*time.Millisecond)
	s.StartFlows(gateFlows(f), 8, 512, 200*time.Microsecond)
	s.RunFor(40 * time.Millisecond)

	var b bytes.Buffer
	b.Write(s.DumpObservables())
	// Per-shard RNG discipline: the post-run generator state must also be
	// worker-independent (draws consumed only by shard-local events).
	b.WriteString("--- rng ---\n")
	for i := 0; i < s.Shards(); i++ {
		fmt.Fprintf(&b, "shard %d: %d\n", i, s.CellKernel(i).Rand().Int63())
	}
	s.Stop()
	return b.Bytes()
}

// TestParallelByteIdentical is the differential determinism gate: the
// sharded engine's complete observable output — delivery order, metrics
// dump, trace export, RNG states — must be byte-identical for 1, 2, and
// 4 workers. The partition (one shard per host) defines the semantics;
// the worker count may only change wall-clock time.
func TestParallelByteIdentical(t *testing.T) {
	ref := gateDump(t, 7, 1)
	for _, w := range []int{2, 4} {
		got := gateDump(t, 7, w)
		if !bytes.Equal(ref, got) {
			diffLine := firstDiffLine(ref, got)
			t.Fatalf("workers=%d output differs from workers=1 (first differing line %d):\n  seq: %s\n  par: %s",
				w, diffLine.n, diffLine.a, diffLine.b)
		}
	}

	// The run must have actually delivered traffic through the flapped
	// trunks, or the gate proves nothing.
	if !bytes.Contains(ref, []byte("deliver")) {
		t.Fatal("gate scenario delivered no frames")
	}
	// And a different seed must change the output — the dump must not be
	// trivially constant.
	other := gateDump(t, 8, 1)
	if bytes.Equal(ref, other) {
		t.Fatal("different seeds produced identical dumps — dump is not sensitive to the run")
	}
}

// TestParallelByteIdenticalLiveness re-runs the differential gate with
// per-path liveness sessions and adaptive retransmission enabled: session
// timers, jittered control traffic, and RTT observations all draw from
// session-local RNGs seeded from (cluster seed, src, dst) — never from a
// shard or worker — so the observable dump must stay byte-identical at
// any worker count. It must also differ from the baseline dump (the
// sessions must actually run) and stay seed-sensitive.
func TestParallelByteIdenticalLiveness(t *testing.T) {
	live := []Option{WithLiveness(), WithAdaptiveRetrans()}
	ref := gateDump(t, 7, 1, live...)
	for _, w := range []int{2, 4} {
		got := gateDump(t, 7, w, live...)
		if !bytes.Equal(ref, got) {
			diffLine := firstDiffLine(ref, got)
			t.Fatalf("liveness workers=%d output differs from workers=1 (first differing line %d):\n  seq: %s\n  par: %s",
				w, diffLine.n, diffLine.a, diffLine.b)
		}
	}
	if !bytes.Contains(ref, []byte("liveness.tx")) {
		t.Fatal("liveness gate dump records no liveness.tx metric — sessions never ran")
	}
	if bytes.Equal(ref, gateDump(t, 7, 1)) {
		t.Fatal("liveness dump identical to baseline dump — options had no effect")
	}
	if bytes.Equal(ref, gateDump(t, 8, 1, live...)) {
		t.Fatal("different seeds produced identical liveness dumps")
	}
}

// TestParallelByteIdenticalCoarseShards re-runs the differential gate
// with a coarse partition (three hosts per shard): the shard plan — not
// the worker count — defines the semantics, so within one plan every
// worker count must produce the same bytes. The coarse dump legitimately
// differs from the fine-partition dump (different shard count, exchange
// counts, trace merge order); what must not vary is the worker count.
func TestParallelByteIdenticalCoarseShards(t *testing.T) {
	coarse := []Option{WithShardPlan(ShardPlan{HostsPerShard: 3})}
	ref := gateDump(t, 7, 1, coarse...)
	for _, w := range []int{2, 4} {
		got := gateDump(t, 7, w, coarse...)
		if !bytes.Equal(ref, got) {
			diffLine := firstDiffLine(ref, got)
			t.Fatalf("coarse workers=%d output differs from workers=1 (first differing line %d):\n  seq: %s\n  par: %s",
				w, diffLine.n, diffLine.a, diffLine.b)
		}
	}
	if !bytes.Contains(ref, []byte("deliver")) {
		t.Fatal("coarse gate scenario delivered no frames")
	}
	if bytes.Equal(ref, gateDump(t, 8, 1, coarse...)) {
		t.Fatal("different seeds produced identical coarse dumps")
	}
}

// TestParallelByteIdentical1kHosts is the differential gate at datacenter
// scale: a 1024-host fat-tree (k=16) under a correlated link-flap storm,
// run with 1, 2, and 4 workers, must produce byte-identical observable
// dumps — and the run itself must pass the exactly-once delivery audit.
// Skipped under -short: each run simulates 64 shards through a 96-event
// storm (a few seconds of wall time per worker count).
func TestParallelByteIdentical1kHosts(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-host differential gate skipped in -short mode")
	}
	run := func(workers int) (*chaos.ScaleReport, []byte) {
		rep, err := chaos.RunScale(chaos.ScaleOpts{
			Topo:     "fattree:16",
			Scenario: "flapstorm",
			Seed:     7,
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep, rep.Dump()
	}
	refRep, ref := run(1)
	if !refRep.Passed() {
		t.Fatalf("reference run violates invariants: %v", refRep.Violations)
	}
	if refRep.Hosts != 1024 {
		t.Fatalf("fattree:16 built %d hosts, want 1024", refRep.Hosts)
	}
	if refRep.Faults == 0 || refRep.Delivered == 0 {
		t.Fatalf("gate proves nothing: %d faults, %d deliveries", refRep.Faults, refRep.Delivered)
	}
	for _, w := range []int{2, 4} {
		rep, got := run(w)
		if !rep.Passed() {
			t.Fatalf("workers=%d run violates invariants: %v", w, rep.Violations)
		}
		if !bytes.Equal(ref, got) {
			diffLine := firstDiffLine(ref, got)
			t.Fatalf("1k-host workers=%d output differs from workers=1 (first differing line %d):\n  seq: %s\n  par: %s",
				w, diffLine.n, diffLine.a, diffLine.b)
		}
	}
	// Seed sensitivity: a different storm must change the bytes.
	otherRep, other := func() (*chaos.ScaleReport, []byte) {
		rep, err := chaos.RunScale(chaos.ScaleOpts{
			Topo: "fattree:16", Scenario: "flapstorm", Seed: 8, Workers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep, rep.Dump()
	}()
	if !otherRep.Passed() {
		t.Fatalf("seed-8 run violates invariants: %v", otherRep.Violations)
	}
	if bytes.Equal(ref, other) {
		t.Fatal("different seeds produced identical 1k-host dumps")
	}
}

type lineDiff struct {
	n    int
	a, b string
}

func firstDiffLine(a, b []byte) lineDiff {
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(la) && i < len(lb); i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return lineDiff{n: i + 1, a: string(la[i]), b: string(lb[i])}
		}
	}
	return lineDiff{n: len(la), a: "<end>", b: "<end>"}
}

// TestParallelRunToRunDeterministic: same seed, same worker count, two
// fresh runs — byte-identical (the proptest oracle contract, applied to
// the parallel engine at its highest tested worker count).
func TestParallelRunToRunDeterministic(t *testing.T) {
	proptest.RequireDeterministic(t, 11, func(seed int64) []byte {
		return gateDump(t, seed, 4)
	})
}

// TestParallelDeliversAllTraffic: the gate scenario is lossy mid-run
// (two trunk flaps) but the retransmission protocol must still complete
// every message by quiesce.
func TestParallelDeliversAllTraffic(t *testing.T) {
	f := NewFig2()
	s := New(
		WithTopology(f.Net, nil),
		WithSeed(3),
		WithRetrans(RetransConfig{
			QueueSize:         16,
			Interval:          time.Millisecond,
			PermFailThreshold: 50 * time.Millisecond,
		}),
		WithFaultTolerance(),
		WithEngine(EngineSharded),
		WithWorkers(2),
	)
	s.FlapTrunk(0, 2*time.Millisecond, 3*time.Millisecond)
	flows := gateFlows(f)
	const msgs = 8
	s.StartFlows(flows, msgs, 512, 200*time.Microsecond)
	s.RunFor(60 * time.Millisecond)
	defer s.Stop()

	// Every (flow, msg) must appear in the merged delivery log exactly
	// once (dedup by retransmission is the protocol's job).
	type key struct {
		src, dst NodeID
		msg      uint64
	}
	seen := make(map[key]int)
	for _, d := range s.Deliveries() {
		seen[key{d.Src, d.Dst, d.Msg}]++
	}
	for _, fl := range flows {
		for m := 1; m <= msgs; m++ {
			k := key{fl.Src, fl.Dst, uint64(m)}
			if seen[k] != 1 {
				t.Errorf("flow %d->%d msg %d delivered %d times, want exactly 1",
					fl.Src, fl.Dst, m, seen[k])
			}
		}
	}
	if s.Exchanged() == 0 {
		t.Fatal("no packets crossed shard boundaries — scenario exercised nothing")
	}
}

// TestShardSeedDiscipline: shard kernel seeds must derive from
// (root seed, shard index) via parsim.ShardSeed — independent kernels
// whose streams never depend on worker scheduling.
func TestShardSeedDiscipline(t *testing.T) {
	s := New(WithStar(4), WithSeed(99), WithEngine(EngineSharded), WithWorkers(2))
	defer s.Stop()
	for i := range s.Hosts {
		want := parsim.ShardSeed(99, i)
		fresh := New(WithStar(4), WithSeed(99), WithEngine(EngineSharded), WithWorkers(1))
		got := fresh.CellKernel(i).Rand().Int63()
		ref := s.CellKernel(i).Rand().Int63()
		fresh.Stop()
		if got != ref {
			t.Fatalf("shard %d: first draw differs across builds (%d vs %d) — seeds not derived from (root, shard) = (%d, %d) -> %d",
				i, got, ref, 99, i, want)
		}
	}
}
