package sanft

import (
	"time"

	"sanft/internal/core"
	"sanft/internal/liveness"
	"sanft/internal/mapping"
	"sanft/internal/metrics"
	"sanft/internal/report"
	"sanft/internal/topology"
)

// Observability and reporting types.
type (
	// Observer is a cluster's observability handle: one registry every
	// subsystem records into, periodic simulated-time sampling, and
	// JSONL / Prometheus / summary exporters. Obtain it with
	// Cluster.Observer().
	Observer = metrics.Observer
	// MetricsRegistry holds every counter, gauge, and histogram of one
	// cluster, keyed by name{labels}.
	MetricsRegistry = metrics.Registry
	// MetricsConfig tunes sampling (interval, retention cap).
	MetricsConfig = metrics.Config
	// MetricsSample is one point of the collected time series.
	MetricsSample = metrics.Sample

	// MapperConfig holds on-demand mapper tunables (probe timeout, BFS
	// bounds).
	MapperConfig = mapping.Config
	// LivenessConfig holds per-path liveness session timer terms
	// (desired/required intervals, detection multiplier, jitter).
	LivenessConfig = liveness.Config
	// RemapPolicy paces the recovery path (backoff, quarantine).
	RemapPolicy = core.RemapPolicy

	// Report is the common rendering contract for experiment and
	// campaign results; Row is one of its result rows; ReportTable the
	// standard implementation.
	Report      = report.Report
	Row         = report.Row
	ReportTable = report.Table
)

// Option mutates a cluster configuration. Options are applied in order,
// so later options override earlier ones.
type Option func(*Config)

// WithTopology wires the cluster over an explicit network. The host list
// may be nil to use every host node in the network.
func WithTopology(nw *Network, hosts []NodeID) Option {
	return func(c *Config) {
		c.Net = nw
		c.Hosts = hosts
	}
}

// WithStar wires n hosts to one full-crossbar switch — the
// micro-benchmark topology.
func WithStar(n int) Option {
	return func(c *Config) {
		c.Net, c.Hosts = topology.Star(n)
	}
}

// WithDoubleStar wires n hosts across two switches with doubled trunks —
// the smallest topology with full path redundancy.
func WithDoubleStar(n int) Option {
	return func(c *Config) {
		c.Net, c.Hosts = topology.DoubleStar(n)
	}
}

// WithFaultTolerance enables the firmware retransmission protocol. With
// no argument the protocol runs with whatever parameters are configured
// (zero fields take the paper's best-compromise defaults — see
// DefaultParams); combine with WithRetrans to tune them. An optional
// RetransConfig argument is accepted for backward compatibility and is
// equivalent to WithRetrans(rc) followed by WithFaultTolerance().
func WithFaultTolerance(rc ...RetransConfig) Option {
	return func(c *Config) {
		c.FT = true
		if len(rc) > 0 {
			c.Retrans = rc[0]
		}
	}
}

// WithRetrans sets the retransmission-protocol parameters (queue size q,
// timer interval T, permanent-failure threshold, ...) without toggling
// the protocol itself — parameters and enablement are orthogonal. Note
// that the parameters matter even with the protocol off: in non-FT mode
// the queue size still bounds the send-buffer pool, which is how the
// no-fault-tolerance baseline is provisioned.
func WithRetrans(rc RetransConfig) Option {
	return func(c *Config) { c.Retrans = rc }
}

// WithRetransParams sets protocol parameters without enabling the
// protocol.
//
// Deprecated: renamed to WithRetrans.
func WithRetransParams(rc RetransConfig) Option { return WithRetrans(rc) }

// WithErrorRate injects send-side drops at rate p (e.g. 1e-3), each NIC
// with its own deterministic schedule.
func WithErrorRate(p float64) Option {
	return func(c *Config) { c.ErrorRate = p }
}

// WithSeed fixes all randomness. New defaults to seed 1.
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithCostModel overrides the NIC hardware calibration.
func WithCostModel(cm CostModel) Option {
	return func(c *Config) { c.Cost = cm }
}

// WithFabricConfig overrides wire constants (link rate, watchdog, ...).
func WithFabricConfig(fc FabricConfig) Option {
	return func(c *Config) { c.Fabric = fc }
}

// WithMapper enables on-demand mapping (requires fault tolerance). An
// optional MapperConfig sets probe timeouts and BFS bounds.
func WithMapper(cfg ...MapperConfig) Option {
	return func(c *Config) {
		c.Mapper = true
		if len(cfg) > 0 {
			c.MapperCfg = cfg[0]
		}
	}
}

// WithLiveness runs a BFD-style liveness session on every routed path
// (requires fault tolerance): a dead path is declared down after
// detect-multiplier × negotiated-interval of control silence — typically
// well before the fixed permanent-failure threshold — and the
// session-down event triggers the same remap/quarantine recovery as a
// stale path. An optional LivenessConfig overrides the timer terms; zero
// fields take RFC 5880-style defaults (1ms interval, multiplier 3).
func WithLiveness(cfg ...LivenessConfig) Option {
	return func(c *Config) {
		lc := LivenessConfig{}
		if len(cfg) > 0 {
			lc = cfg[0]
		}
		c.Liveness = &lc
	}
}

// WithAdaptiveRetrans switches the retransmission timeout from the
// paper's fixed interval to an RTT-adaptive one: liveness RTT samples
// (and unambiguous ack timings) drive a Jacobson/Karn SRTT/RTTVAR
// estimator per destination, with exponential backoff while a path is
// unresponsive. Best combined with WithLiveness, which supplies steady
// RTT samples even when data traffic is idle.
func WithAdaptiveRetrans() Option {
	return func(c *Config) { c.Retrans.Adaptive = true }
}

// WithRemapPolicy tunes recovery pacing (backoff, quarantine).
func WithRemapPolicy(p RemapPolicy) Option {
	return func(c *Config) { c.Remap = p }
}

// WithOnUnreachable installs the graceful-degradation upcall, fired when
// src quarantines dst after repeated failed remaps.
func WithOnUnreachable(fn func(src, dst NodeID)) Option {
	return func(c *Config) { c.OnUnreachable = fn }
}

// WithMetrics tunes the observability layer (the registry itself is
// always on; this configures sampling cadence and retention).
func WithMetrics(mc MetricsConfig) Option {
	return func(c *Config) { c.Metrics = mc }
}

// WithSampling starts periodic metric sampling every `every` of simulated
// time — shorthand for WithMetrics(MetricsConfig{SampleEvery: every}).
func WithSampling(every time.Duration) Option {
	return func(c *Config) { c.Metrics.SampleEvery = every }
}

// WithTracing wires tr as the cluster-wide tracer: every NIC protocol
// action, fabric hop event, VMMC message-lifecycle event, and remap
// lifecycle event is recorded through it. Typically a *TraceRing (plain
// ring buffer) or a *FlightRecorder. Zero cost when absent.
func WithTracing(tr Tracer) Option {
	return func(c *Config) { c.Tracer = tr }
}

// WithFlightRecorder wires fr as the cluster tracer. A flight recorder is
// a ring that additionally freezes a snapshot of its window whenever an
// anomaly fires (watchdog reset, unreachable verdict, quarantine), so the
// events leading up to a fault survive even after the ring wraps.
func WithFlightRecorder(fr *FlightRecorder) Option {
	return func(c *Config) { c.Tracer = fr }
}

// WithEngineProfiling enables the engine's wall-clock self-profiler:
// per-worker epoch accounting (busy / barrier-stall / steal / exchange
// time, steal hit rates, events executed), per-shard kernel counters
// (scheduled/cancelled/executed, arena high-water mark), and frame/packet
// pool hit rates. Read the collected profile with Cluster.EngineProfile
// after the run; render it with its WriteText/WriteJSON/WriteChromeTrace.
// Profiling observes wall clocks only and feeds nothing back, so results
// stay byte-identical to an unprofiled run.
func WithEngineProfiling() Option {
	return func(c *Config) { c.Profile = true }
}

// WithTelemetryServer starts a live telemetry HTTP server on addr
// (host:port; port 0 picks one — Cluster.Telemetry().Addr() reports it):
// Prometheus /metrics (published on every observer sample and at
// RunFor/Stop boundaries), the engine profile at /profile, /debug/pprof,
// and expvar. The server outlives Stop so a final scrape sees the end
// state; close it with Cluster.Telemetry().Close().
func WithTelemetryServer(addr string) Option {
	return func(c *Config) { c.Telemetry = addr }
}

// WithEngine selects the execution engine: EngineSequential (the
// default — one kernel, full observability) or EngineSharded (hosts
// partitioned into shard cells under the conservative parallel engine;
// outputs are byte-identical for every worker count). Combine with
// WithShardPlan and WithWorkers to shape a sharded run.
func WithEngine(k EngineKind) Option {
	return func(c *Config) { c.Engine = k }
}

// WithShardPlan sets the host partition for sharded execution and
// implies WithEngine(EngineSharded). The plan is part of the
// experiment's identity — it decides which traffic crosses epoch
// barriers — so differential comparisons must hold it fixed. The zero
// plan is one host per shard.
func WithShardPlan(p ShardPlan) Option {
	return func(c *Config) {
		c.Engine = EngineSharded
		c.Plan = p
	}
}

// WithWorkers sets how many OS threads drive the shard kernels under
// EngineSharded. Any value — including the default 0 (= GOMAXPROCS) —
// produces byte-identical results; the setting only changes wall-clock
// time. Ignored by the sequential engine.
func WithWorkers(n int) Option {
	return func(c *Config) { c.Workers = n }
}

// WithShards sets the worker count for sharded parallel execution.
//
// Deprecated: renamed to WithWorkers (a "shard" is a cell of the
// partition, not an OS thread).
func WithShards(n int) Option { return WithWorkers(n) }

// New builds a cluster from functional options:
//
//	c := sanft.New(
//		sanft.WithStar(8),
//		sanft.WithFaultTolerance(),
//		sanft.WithErrorRate(1e-3),
//		sanft.WithSampling(time.Millisecond),
//	)
//
// With no topology option, a two-host star is built; the default seed
// is 1. The same constructor builds sharded parallel clusters:
//
//	s := sanft.New(
//		sanft.WithStar(8),
//		sanft.WithEngine(sanft.EngineSharded), // or WithShardPlan(...)
//		sanft.WithWorkers(4),
//	)
func New(opts ...Option) *Cluster {
	cfg := Config{Seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	return core.New(cfg)
}

// NewFromConfig builds a cluster from an explicit Config struct.
//
// Deprecated: use New with options (WithEngine/WithShardPlan cover the
// cases that once required struct-style construction).
func NewFromConfig(cfg Config) *Cluster { return core.New(cfg) }
