package sanft_test

import (
	"fmt"
	"time"

	"sanft"
)

// ExampleNew shows the minimal reliable-transfer flow: build a cluster
// with the retransmission protocol and heavy injected loss, deposit a
// message into an exported buffer, and observe it arrive intact. The
// simulation is deterministic, so the output is exact.
func ExampleNew() {
	cluster := sanft.New(
		sanft.WithStar(2),
		sanft.WithFaultTolerance(),
		sanft.WithErrorRate(0.25), // one packet in four vanishes before the wire
	)
	inbox := cluster.EndpointAt(1).Export("inbox", 4096)
	cluster.K.Spawn("sender", func(p *sanft.Proc) {
		imp, _ := cluster.EndpointAt(0).Import(cluster.Host(1), "inbox")
		for i := 0; i < 8; i++ {
			imp.Send(p, 0, []byte(fmt.Sprintf("block-%d", i)), true)
		}
	})
	got := 0
	cluster.K.Spawn("receiver", func(p *sanft.Proc) {
		for i := 0; i < 8; i++ {
			inbox.WaitNotification(p)
			got++
		}
	})
	cluster.RunFor(time.Second)
	cluster.Stop()
	drops := cluster.NICAt(0).Counters().Get("err-injected-drops")
	fmt.Printf("delivered %d/8 despite %d injected drops\n", got, drops)
	// Output: delivered 8/8 despite 9 injected drops
}

// ExampleRunFig3 regenerates the paper's Figure 3 numbers: the
// retransmission protocol costs ~1µs of firmware time on each side of a
// 4-byte message.
func ExampleRunFig3() {
	r := sanft.RunFig3(sanft.Options{})
	fmt.Printf("no-FT %v, with-FT %v\n", r.NoFT.Total(), r.FT.Total())
	// Output: no-FT 8.107µs, with-FT 10.107µs
}

// ExampleRunTable3 regenerates Table 3's first row: mapping to a host on
// the mapper's own switch needs only a handful of probes.
func ExampleRunTable3() {
	rows := sanft.RunTable3(sanft.Options{})
	r := rows[0]
	fmt.Printf("%d hop: %d probes in %v\n", r.Hops, r.Total, r.MapTime)
	// Output: 1 hop: 6 probes in 2.004806ms
}
